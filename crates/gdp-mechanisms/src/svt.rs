use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::budget::Epsilon;
use crate::error::MechanismError;
use crate::sampling;
use crate::sensitivity::L1Sensitivity;
use crate::Result;

/// The **sparse vector technique** (AboveThreshold, Dwork–Roth
/// Algorithm 1): answers a *stream* of threshold queries, paying budget
/// only for the (at most `max_positives`) queries reported above the
/// threshold, regardless of how many queries are asked.
///
/// In the disclosure pipeline this powers *adaptive* exploration: a data
/// owner can scan hierarchy groups for "is this group's association
/// count above τ?" without burning budget linearly in the number of
/// groups — the classic use of SVT in graph statistics.
///
/// Budget accounting: the threshold noise uses `ε/2` and each positive
/// answer uses `ε/(2·max_positives)`; the sequence is `ε`-DP in total
/// under the supplied sensitivity (Dwork & Roth, Theorem 3.24).
///
/// ```
/// use gdp_mechanisms::{Epsilon, L1Sensitivity, SparseVector};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), gdp_mechanisms::MechanismError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut svt = SparseVector::new(
///     Epsilon::new(1.0)?, L1Sensitivity::unit(), 100.0, 1, &mut rng)?;
/// // Far-below-threshold queries are (very likely) negative and free.
/// assert!(!svt.query(0.0, &mut rng)?);
/// // A far-above query trips the detector and consumes the positive.
/// assert!(svt.query(10_000.0, &mut rng)?);
/// assert!(svt.exhausted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseVector {
    epsilon: Epsilon,
    sensitivity: L1Sensitivity,
    noisy_threshold: f64,
    per_positive_scale: f64,
    positives_left: u32,
}

impl SparseVector {
    /// Arms an AboveThreshold detector.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::InvalidProbability`] if `max_positives`
    /// is zero (a detector that may never fire is a misconfiguration).
    pub fn new<R: Rng + ?Sized>(
        epsilon: Epsilon,
        sensitivity: L1Sensitivity,
        threshold: f64,
        max_positives: u32,
        rng: &mut R,
    ) -> Result<Self> {
        if max_positives == 0 {
            return Err(MechanismError::InvalidProbability(0.0));
        }
        let threshold_scale = 2.0 * sensitivity.get() / epsilon.get();
        let per_positive_scale =
            4.0 * max_positives as f64 * sensitivity.get() / epsilon.get();
        Ok(Self {
            epsilon,
            sensitivity,
            noisy_threshold: threshold + sampling::laplace(rng, threshold_scale),
            per_positive_scale,
            positives_left: max_positives,
        })
    }

    /// The total budget this detector consumes over its lifetime.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The query sensitivity the detector was armed with.
    pub fn sensitivity(&self) -> L1Sensitivity {
        self.sensitivity
    }

    /// Remaining positive answers before the detector exhausts.
    pub fn positives_left(&self) -> u32 {
        self.positives_left
    }

    /// Whether the positive budget is spent; further queries error.
    pub fn exhausted(&self) -> bool {
        self.positives_left == 0
    }

    /// Tests one query value against the (noisy) threshold.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::BudgetExhausted`] once `max_positives`
    /// positive answers have been returned — the privacy guarantee does
    /// not cover further answers.
    pub fn query<R: Rng + ?Sized>(&mut self, value: f64, rng: &mut R) -> Result<bool> {
        if self.exhausted() {
            return Err(MechanismError::BudgetExhausted {
                requested_epsilon: self.epsilon.get(),
                available_epsilon: 0.0,
                requested_delta: 0.0,
                available_delta: 0.0,
            });
        }
        let noisy = value + sampling::laplace(rng, self.per_positive_scale);
        if noisy >= self.noisy_threshold {
            self.positives_left -= 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn svt(eps: f64, threshold: f64, k: u32, seed: u64) -> SparseVector {
        let mut rng = StdRng::seed_from_u64(seed);
        SparseVector::new(
            Epsilon::new(eps).unwrap(),
            L1Sensitivity::unit(),
            threshold,
            k,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn zero_positives_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(SparseVector::new(
            Epsilon::new(1.0).unwrap(),
            L1Sensitivity::unit(),
            0.0,
            0,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn clear_separation_is_detected() {
        let mut detector = svt(2.0, 100.0, 3, 1);
        let mut rng = StdRng::seed_from_u64(2);
        // Values far below never fire (with overwhelming probability at
        // this scale); values far above always do.
        for _ in 0..20 {
            assert!(!detector.query(-10_000.0, &mut rng).unwrap());
        }
        assert!(detector.query(100_000.0, &mut rng).unwrap());
        assert_eq!(detector.positives_left(), 2);
    }

    #[test]
    fn exhaustion_stops_answers() {
        let mut detector = svt(2.0, 0.0, 2, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut positives = 0;
        for _ in 0..100 {
            match detector.query(1e7, &mut rng) {
                Ok(true) => positives += 1,
                Ok(false) => {}
                Err(MechanismError::BudgetExhausted { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert_eq!(positives, 2);
        assert!(detector.exhausted());
        assert!(detector.query(1e7, &mut rng).is_err());
    }

    #[test]
    fn false_positive_rate_is_low_far_from_threshold() {
        // 6 scales below the threshold → negligible firing probability.
        let mut rng = StdRng::seed_from_u64(5);
        let mut fires = 0;
        for seed in 0..200 {
            let mut d = svt(1.0, 1000.0, 1, seed);
            // per-positive scale = 4·1/1 = 4; threshold scale 2.
            if d.query(900.0, &mut rng).unwrap() {
                fires += 1;
            }
        }
        assert!(fires < 10, "fired {fires}/200 at 25 scales below threshold");
    }

    #[test]
    fn detector_state_is_serializable() {
        let d = svt(1.0, 5.0, 2, 6);
        let cloned = d.clone();
        assert_eq!(d.positives_left(), cloned.positives_left());
        assert_eq!(d.epsilon().get(), 1.0);
        assert_eq!(d.sensitivity().get(), 1.0);
    }
}
