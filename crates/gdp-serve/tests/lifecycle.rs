//! Durable store lifecycle: crash-safe publish, torn-write tolerance,
//! quarantine, retention GC, and live directory merges.
//!
//! The acceptance scenario pinned here: a publisher killed mid-publish
//! (simulated via an interrupted atomic write) must leave
//! `open_dir_report` serving every previously-committed epoch
//! **bit-identically**, with the partial file quarantined.

use std::fs;
use std::path::{Path, PathBuf};

use gdp_core::{
    CoreError, DisclosureConfig, MultiLevelDiscloser, Query, ReleaseArtifact,
    SpecializationConfig, Specializer,
};
use gdp_graph::{GraphBuilder, LeftId, RightId, Side};
use gdp_serve::lifecycle::QUARANTINE_DIR;
use gdp_serve::{
    AnswerService, FileOutcome, Query as ServeQuery, ReleaseStore, RetentionPolicy, ServeError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deliberately tiny sealed artifact (~4 KB of JSON) so the
/// every-byte truncation sweep stays fast.
fn artifact(dataset: &str, epoch: u64, seed: u64) -> ReleaseArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(6, 6);
    for (l, r) in [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (0, 1), (2, 3)] {
        b.add_edge(LeftId::new(l), RightId::new(r)).unwrap();
    }
    let graph = b.build();
    let hierarchy = Specializer::new(SpecializationConfig::median(1).unwrap())
        .specialize(&graph, &mut rng)
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6)
            .unwrap()
            .with_queries(vec![Query::PerGroupCounts, Query::TotalAssociations]),
    )
    .disclose(&graph, &hierarchy, &mut rng)
    .unwrap();
    ReleaseArtifact::seal(dataset, epoch, hierarchy, release).unwrap()
}

fn rendered(a: &ReleaseArtifact) -> String {
    let mut buf = Vec::new();
    a.write_json(&mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdp-lifecycle-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn publish_into(dir: &Path, a: &ReleaseArtifact) -> PathBuf {
    let path = dir.join(ReleaseArtifact::canonical_file_name(a.dataset(), a.epoch()));
    a.save_atomic(&path).unwrap();
    path
}

/// The coarsest level of an artifact, servable by a privilege of the
/// same rank — the simplest always-allowed answering probe.
fn coarse_total(service: &AnswerService, dataset: &str, epoch: u64, levels: usize) -> f64 {
    let level = levels - 1;
    service
        .answer_typed(
            dataset,
            epoch,
            gdp_core::Privilege::new(level),
            level,
            &ServeQuery::SideTotal { side: Side::Left },
        )
        .unwrap()
        .scalar()
        .unwrap()
}

#[test]
fn torn_write_truncation_sweep_is_typed_never_panics() {
    let a = artifact("torn", 1, 11);
    let text = rendered(&a);
    let full = text.trim_end();
    for cut in 0..=text.len() {
        let prefix = &text[..cut];
        match ReleaseArtifact::read_json(prefix.as_bytes()) {
            Ok(back) => {
                // Only a cut that merely shaves trailing whitespace can
                // still parse — and then it must be lossless.
                assert_eq!(prefix.trim_end(), full, "cut {cut} parsed unexpectedly");
                assert_eq!(back, a);
            }
            Err(
                CoreError::Graph(_) | CoreError::Artifact(_) | CoreError::ChecksumMismatch { .. },
            ) => {}
            Err(other) => panic!("cut {cut}: unexpected error class: {other}"),
        }
    }
}

#[test]
fn torn_writes_on_disk_are_quarantined() {
    let a = artifact("torn", 1, 12);
    let text = rendered(&a);
    // A spread of truncation points, including deep cuts that leave
    // valid JSON prefixes of the payload (checksum territory).
    let cuts = [
        1,
        text.len() / 4,
        text.len() / 2,
        3 * text.len() / 4,
        text.len() - 2,
    ];
    for cut in cuts {
        let dir = fresh_dir(&format!("torn-disk-{cut}"));
        fs::write(dir.join("torn-e1.json"), &text[..cut]).unwrap();
        let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
        assert_eq!(store.len(), 0, "cut {cut} must not serve");
        assert_eq!(report.quarantined(), 1, "cut {cut}: {}", report.summary());
        assert!(
            !dir.join("torn-e1.json").exists(),
            "cut {cut}: torn file must be moved out of the scan path"
        );
        assert!(
            dir.join(QUARANTINE_DIR).join("torn-e1.json").exists(),
            "cut {cut}: quarantine must capture the bytes"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn crash_sim_kill_mid_publish_serves_committed_epochs_bit_identically() {
    let dir = fresh_dir("crash-sim");
    let a1 = artifact("weekly", 1, 21);
    let a2 = artifact("weekly", 2, 22);
    publish_into(&dir, &a1);
    publish_into(&dir, &a2);
    // Baseline answers from a clean store.
    let (clean, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    let levels = a1.level_count();
    let clean_service = AnswerService::new(clean);
    let baseline: Vec<f64> = (1..=2)
        .map(|e| coarse_total(&clean_service, "weekly", e, levels))
        .collect();

    // Kill-mid-publish, variant A: the process died before the rename,
    // leaving staged `*.tmp` debris of epoch 3.
    let a3 = artifact("weekly", 3, 23);
    let t3 = rendered(&a3);
    fs::write(dir.join("weekly-e3.json.tmp"), &t3[..t3.len() / 2]).unwrap();
    // Variant B: a torn write that did reach the final path (a
    // pre-atomic-discipline publisher, or storage that lied about
    // durability) for epoch 4.
    let a4 = artifact("weekly", 4, 24);
    let t4 = rendered(&a4);
    fs::write(dir.join("weekly-e4.json"), &t4[..(2 * t4.len()) / 3]).unwrap();

    let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    // Both partials quarantined, nothing else disturbed.
    assert_eq!(report.quarantined(), 2, "{}", report.summary());
    assert_eq!(report.loaded(), 2, "{}", report.summary());
    assert_eq!(store.epochs("weekly"), vec![1, 2]);
    assert!(dir.join(QUARANTINE_DIR).join("weekly-e3.json.tmp").exists());
    assert!(dir.join(QUARANTINE_DIR).join("weekly-e4.json").exists());
    assert!(!dir.join("weekly-e3.json.tmp").exists());
    assert!(!dir.join("weekly-e4.json").exists());

    // Committed epochs are byte-for-byte what was published…
    assert_eq!(*store.get("weekly", 1).unwrap().artifact(), a1);
    assert_eq!(*store.get("weekly", 2).unwrap().artifact(), a2);
    // …and answers are bit-identical to the pre-crash store's.
    let service = AnswerService::new(ReleaseStore::open_dir_report(&dir).unwrap().0);
    for (i, epoch) in (1..=2).enumerate() {
        let after = coarse_total(&service, "weekly", epoch, levels);
        assert_eq!(
            after.to_bits(),
            baseline[i].to_bits(),
            "epoch {epoch} answer changed across the crash"
        );
    }

    // A second open finds a clean directory: no partials left to sweep.
    let (_, second) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(second.quarantined(), 0, "{}", second.summary());
    assert_eq!(second.loaded(), 2);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn strict_open_dir_skips_strays_and_report_notes_them() {
    let dir = fresh_dir("strays");
    publish_into(&dir, &artifact("d", 1, 31));
    fs::create_dir_all(dir.join("not-an-artifact.json")).unwrap(); // subdir with .json name
    fs::write(dir.join(".hidden-artifact.json"), "{").unwrap();
    fs::write(dir.join("d-e1.json~"), "backup").unwrap();
    fs::write(dir.join("d-e1.json.bak"), "backup").unwrap();
    fs::write(dir.join("notes.txt"), "operator notes").unwrap();

    // Strict open no longer chokes on any of these.
    let store = ReleaseStore::open_dir(&dir).unwrap();
    assert_eq!(store.len(), 1);
    assert_eq!(store.epochs("d"), vec![1]);

    // The degraded open names each one with a typed note.
    let (_, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(report.loaded(), 1);
    assert_eq!(report.quarantined(), 0);
    assert_eq!(report.strays(), 5, "{}", report.summary());
    let notes: Vec<&str> = report
        .outcomes
        .iter()
        .filter_map(|o| match o {
            FileOutcome::Stray { note, .. } => Some(note.as_str()),
            _ => None,
        })
        .collect();
    assert!(notes.contains(&"directory"), "{notes:?}");
    assert!(notes.contains(&"hidden file"), "{notes:?}");
    assert!(notes.contains(&"editor backup"), "{notes:?}");
    assert!(notes.contains(&"not an artifact file (.json/.gda)"), "{notes:?}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn strict_open_dir_still_types_checksum_corruption() {
    let dir = fresh_dir("strict-checksum");
    let text = rendered(&artifact("d", 1, 32));
    // Flip a payload digit; the JSON stays well-formed and the manifest
    // still matches the payload's shape, so only the digest catches it.
    let needle = "\"noise_scale\": ";
    let pos = text.find(needle).unwrap() + needle.len();
    let digit = text[pos..].chars().next().unwrap();
    let flipped = if digit == '9' { '8' } else { '9' };
    let mut doctored = text.clone();
    doctored.replace_range(pos..pos + 1, &flipped.to_string());
    assert_ne!(doctored, text);
    fs::write(dir.join("d-e1.json"), &doctored).unwrap();

    let err = ReleaseStore::open_dir(&dir).unwrap_err();
    assert!(
        matches!(err, ServeError::Core(CoreError::ChecksumMismatch { .. })),
        "{err}"
    );
    // Degraded open quarantines it with the same reason.
    let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert!(store.is_empty());
    assert_eq!(report.quarantined(), 1);
    let FileOutcome::Quarantined { reason, .. } = &report.outcomes[0] else {
        panic!("expected a quarantine outcome: {report:?}");
    };
    assert!(reason.contains("checksum mismatch"), "{reason}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_dir_hot_reloads_new_epochs_and_retires_deleted_ones() {
    let dir = fresh_dir("merge");
    let a1 = artifact("d", 1, 41);
    let p1 = publish_into(&dir, &a1);
    let (store, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(store.epochs("d"), vec![1]);

    // A new epoch lands while the store is live.
    let a2 = artifact("d", 2, 42);
    publish_into(&dir, &a2);
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.loaded(), 1, "{}", report.summary());
    assert_eq!(report.already_registered(), 1);
    assert_eq!(store.epochs("d"), vec![1, 2]);
    assert_eq!(*store.get("d", 2).unwrap().artifact(), a2);

    // An in-flight atomic publish is left alone by a live re-scan.
    fs::write(dir.join("d-e9.json.tmp"), "half-written").unwrap();
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.quarantined(), 0, "{}", report.summary());
    assert!(dir.join("d-e9.json.tmp").exists(), "live tmp must survive");
    assert!(report.outcomes.iter().any(|o| matches!(
        o,
        FileOutcome::Stray { note, .. } if note.contains("in flight")
    )));
    fs::remove_file(dir.join("d-e9.json.tmp")).unwrap();

    // Deleting a backing file (e.g. an external `gdp gc`) retires the
    // epoch on the next merge: typed 404, not stale serving.
    fs::remove_file(&p1).unwrap();
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.retired(), 1, "{}", report.summary());
    assert_eq!(store.epochs("d"), vec![2]);
    assert!(matches!(
        store.get("d", 1).unwrap_err(),
        ServeError::UnknownRelease { epoch: 1, .. }
    ));

    // Vandalizing a served epoch's file quarantines the file but the
    // validated in-memory copy keeps serving — now and after further
    // merges (the entry is detached from disk, not retired).
    fs::write(dir.join(ReleaseArtifact::canonical_file_name("d", 2)), "{garbage").unwrap();
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.quarantined(), 1, "{}", report.summary());
    assert_eq!(*store.get("d", 2).unwrap().artifact(), a2);
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.retired(), 0, "{}", report.summary());
    assert_eq!(store.epochs("d"), vec![2]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_dir_never_retires_programmatic_inserts() {
    let dir = fresh_dir("merge-mem");
    publish_into(&dir, &artifact("d", 1, 43));
    let (store, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    // A memory-only insert has no backing file anywhere.
    store.insert_sealed(artifact("mem", 7, 44)).unwrap();
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.retired(), 0, "{}", report.summary());
    assert_eq!(store.epochs("mem"), vec![7]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_keep_last_durably_deletes_only_superseded_epochs() {
    let dir = fresh_dir("gc");
    for epoch in 1..=5 {
        publish_into(&dir, &artifact("d", epoch, 50 + epoch));
    }
    let (store, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    let report = store.gc(&RetentionPolicy::keep_last(2), None);
    assert_eq!(report.evicted(), 3, "{}", report.summary());
    assert_eq!(report.failed_deletions(), 0);
    assert_eq!(store.epochs("d"), vec![4, 5]);
    assert!(matches!(
        store.get("d", 1).unwrap_err(),
        ServeError::UnknownRelease { .. }
    ));
    for epoch in 1..=3u64 {
        assert!(
            !dir.join(ReleaseArtifact::canonical_file_name("d", epoch)).exists(),
            "epoch {epoch} file must be deleted"
        );
    }
    // The surviving files reload to exactly the surviving epochs.
    let (reopened, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(reopened.epochs("d"), vec![4, 5]);
    // GC is idempotent.
    assert_eq!(store.gc(&RetentionPolicy::keep_last(2), None).evicted(), 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_honors_dataset_filter_and_memory_only_entries() {
    let dir = fresh_dir("gc-filter");
    for epoch in 1..=3 {
        publish_into(&dir, &artifact("a", epoch, 60 + epoch));
        publish_into(&dir, &artifact("b", epoch, 70 + epoch));
    }
    let (store, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    let report = store.gc(&RetentionPolicy::keep_last(1), Some("a"));
    assert_eq!(report.evicted(), 2);
    assert!(report.evictions.iter().all(|e| e.dataset == "a"));
    assert_eq!(store.epochs("a"), vec![3]);
    assert_eq!(store.epochs("b"), vec![1, 2, 3], "filtered dataset untouched");

    // Memory-only entries evict without touching disk.
    store.insert_sealed(artifact("mem", 1, 81)).unwrap();
    store.insert_sealed(artifact("mem", 2, 82)).unwrap();
    let report = store.gc(&RetentionPolicy::keep_last(1), Some("mem"));
    assert_eq!(report.evicted(), 1);
    assert_eq!(report.evictions[0].path, None);
    assert!(report.evictions[0].deleted);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_writes_canonical_atomic_files_that_gc_can_reclaim() {
    let dir = fresh_dir("save");
    let store = ReleaseStore::new();
    store.insert_sealed(artifact("d", 1, 91)).unwrap();
    store.insert_sealed(artifact("d", 2, 92)).unwrap();
    let written = store.save(&dir).unwrap();
    assert_eq!(
        written,
        vec![
            dir.join("d-e1.json"),
            dir.join("d-e2.json"),
        ]
    );
    let (back, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(report.loaded(), 2);
    assert_eq!(back.epochs("d"), vec![1, 2]);
    // save recorded the sources, so gc can delete the files it wrote.
    let gc = store.gc(&RetentionPolicy::keep_last(1), None);
    assert_eq!(gc.evicted(), 1);
    assert!(!dir.join("d-e1.json").exists());
    assert!(dir.join("d-e2.json").exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn quarantine_preserves_colliding_names() {
    let dir = fresh_dir("quarantine-collide");
    fs::write(dir.join("d-e1.json"), "{torn").unwrap();
    let (_, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(report.quarantined(), 1);
    // Same damaged name appears again (republish also crashed).
    fs::write(dir.join("d-e1.json"), "{torn again").unwrap();
    let (_, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(report.quarantined(), 1);
    let qdir = dir.join(QUARANTINE_DIR);
    assert!(qdir.join("d-e1.json").exists());
    assert!(qdir.join("d-e1.json.1").exists(), "second capture suffixed");
    fs::remove_dir_all(&dir).unwrap();
}
