//! Serving conformance suite — the ISSUE-5 acceptance pins.
//!
//! For **every** [`Query`] variant, the indexed answering path must be
//! bit-identical to its core rescan baseline — values *and* typed-error
//! precedence — on arbitrary graphs, hierarchies, release shapes
//! (per-group counts and degree histograms independently present or
//! absent) and queries (valid, out-of-range, duplicated, wrong-side).
//! And a sealed artifact must answer identically after a JSON
//! save → load round trip, variant by variant.
//!
//! Baselines, all in `gdp_core::answering`:
//!
//! | variant           | baseline                                  |
//! |-------------------|-------------------------------------------|
//! | `SubsetCount`     | `SubsetCountEstimator::estimate`          |
//! | `GroupMass`       | `scan_group_mass`                         |
//! | `DegreeHistogram` | `scan_degree_histogram`                   |
//! | `SideTotal`       | `scan_side_total`                         |

use proptest::prelude::*;

use gdp_core::answering::{
    scan_degree_histogram, scan_group_mass, scan_side_total, SubsetCountEstimator,
};
use gdp_core::{
    CoreError, DisclosureConfig, GroupHierarchy, MultiLevelDiscloser, MultiLevelRelease,
    Query as CoreQuery, ReleaseArtifact, SpecializationConfig, Specializer,
};
use gdp_graph::{BipartiteGraph, GraphBuilder, LeftId, RightId, Side};
use gdp_serve::{IndexedRelease, Query, ServeError, SubsetQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Both answering paths' results, normalized for comparison: floats by
/// bit pattern, errors by class and payload. The mapping between
/// [`CoreError`] classes and [`ServeError`] classes is the conformance
/// contract itself (e.g. the core scan reports a missing per-group
/// release as `InvalidConfig` where the serving layer types it
/// `LevelNotIndexed`).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Scalar(u64),
    Histogram(Vec<u64>),
    LevelOutOfRange(usize),
    /// Missing per-group release (subset, mass and total queries).
    NotIndexed,
    /// Missing (or right-side) histogram release.
    NotReleased,
    NodeOutOfRange(u32),
    DuplicateNode(u32),
    GroupOutOfRange(u32),
    Unexpected(String),
}

fn core_outcome(query: &Query, result: Result<Outcome, CoreError>) -> Outcome {
    match result {
        Ok(outcome) => outcome,
        Err(CoreError::LevelOutOfRange { level, .. }) => Outcome::LevelOutOfRange(level),
        Err(CoreError::SubsetNodeOutOfRange { node, .. }) => Outcome::NodeOutOfRange(node),
        Err(CoreError::DuplicateSubsetNode { node, .. }) => Outcome::DuplicateNode(node),
        Err(CoreError::GroupOutOfRange { group, .. }) => Outcome::GroupOutOfRange(group),
        Err(CoreError::InvalidConfig(_)) => match query {
            Query::DegreeHistogram { .. } => Outcome::NotReleased,
            _ => Outcome::NotIndexed,
        },
        Err(other) => Outcome::Unexpected(format!("{other:?}")),
    }
}

/// The core-path rescan: resolve the level out of the raw release, then
/// apply the variant's baseline.
fn baseline(
    hierarchy: &GroupHierarchy,
    release: &MultiLevelRelease,
    level: usize,
    query: &Query,
) -> Outcome {
    let resolved = release.level(level).and_then(|rel| {
        let lvl = hierarchy.level(level)?;
        match query {
            Query::SubsetCount(q) => SubsetCountEstimator::new(rel, lvl)?
                .estimate(q.side, &q.nodes)
                .map(|v| Outcome::Scalar(v.to_bits())),
            Query::GroupMass { side, group } => scan_group_mass(rel, lvl, *side, *group)
                .map(|v| Outcome::Scalar(v.to_bits())),
            Query::DegreeHistogram { side } => scan_degree_histogram(rel, *side)
                .map(|bins| Outcome::Histogram(bins.iter().map(|v| v.to_bits()).collect())),
            Query::SideTotal { side } => {
                scan_side_total(rel, lvl, *side).map(|v| Outcome::Scalar(v.to_bits()))
            }
        }
    });
    core_outcome(query, resolved)
}

/// The indexed path, normalized through the same outcome alphabet.
fn indexed_outcome(indexed: &IndexedRelease, level: usize, query: &Query) -> Outcome {
    match indexed.answer(level, query) {
        Ok(answer) => match answer.histogram() {
            Some(bins) => Outcome::Histogram(bins.iter().map(|v| v.to_bits()).collect()),
            None => Outcome::Scalar(answer.scalar().unwrap().to_bits()),
        },
        Err(ServeError::LevelNotIndexed { .. }) => Outcome::NotIndexed,
        Err(ServeError::StatisticNotReleased { .. }) => Outcome::NotReleased,
        Err(ServeError::Core(e)) => core_outcome(query, Err(e)),
        Err(other) => Outcome::Unexpected(format!("{other:?}")),
    }
}

fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (3u32..30, 3u32..30)
        .prop_flat_map(|(nl, nr)| {
            let edges = proptest::collection::vec((0..nl, 0..nr), 1..160);
            (Just(nl), Just(nr), edges)
        })
        .prop_map(|(nl, nr, edges)| {
            let mut b = GraphBuilder::new(nl, nr);
            for (l, r) in edges {
                b.add_edge(LeftId::new(l), RightId::new(r)).unwrap();
            }
            b.build()
        })
}

/// A random release shape: per-group counts and the degree histogram
/// are independently present, so the suite exercises the not-indexed /
/// not-released error paths as often as the happy ones.
fn published(
    graph: &BipartiteGraph,
    rounds: u32,
    seed: u64,
    with_per_group: bool,
    with_histogram: bool,
) -> (GroupHierarchy, MultiLevelRelease) {
    let hierarchy = Specializer::new(SpecializationConfig::median(rounds).unwrap())
        .specialize(graph, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let mut queries = vec![CoreQuery::TotalAssociations];
    if with_per_group {
        queries.push(CoreQuery::PerGroupCounts);
    }
    if with_histogram {
        queries.push(CoreQuery::LeftDegreeHistogram { max_degree: 12 });
    }
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.8, 1e-6)
            .unwrap()
            .with_queries(queries),
    )
    .disclose(graph, &hierarchy, &mut StdRng::seed_from_u64(seed ^ 0xABCD))
    .unwrap();
    (hierarchy, release)
}

/// Raw query material mapped into a [`Query`], biased to straddle the
/// valid ranges (nodes/groups run a little past the side sizes, levels
/// a little past the hierarchy).
fn materialize(
    variant: u8,
    right: bool,
    raw_nodes: &[u64],
    raw_group: u64,
    graph: &BipartiteGraph,
) -> Query {
    let side = if right { Side::Right } else { Side::Left };
    let n = if right { graph.right_count() } else { graph.left_count() };
    match variant % 4 {
        0 => Query::SubsetCount(SubsetQuery {
            side,
            nodes: raw_nodes.iter().map(|&v| (v % (n as u64 + 3)) as u32).collect(),
        }),
        1 => Query::GroupMass {
            side,
            // Group counts shrink toward coarse levels, so modding by
            // the node count + slack covers both valid and invalid ids.
            group: (raw_group % (n as u64 + 3)) as u32,
        },
        2 => Query::DegreeHistogram { side },
        _ => Query::SideTotal { side },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE conformance pin: for every variant, on every input — levels
    /// beyond the hierarchy included — the indexed path and the core
    /// rescan agree bitwise on values and on the error class + payload
    /// (first-offender precedence carried in the payload).
    #[test]
    fn every_variant_matches_its_rescan_baseline(
        graph in graph_strategy(),
        rounds in 1u32..4,
        seed in 0u64..50,
        with_per_group in proptest::bool::ANY,
        with_histogram in proptest::bool::ANY,
        queries in proptest::collection::vec(
            (0u8..4, proptest::bool::ANY,
             proptest::collection::vec(0u64..1 << 32, 0..24), 0u64..1 << 32),
            1..12,
        ),
    ) {
        let (hierarchy, release) =
            published(&graph, rounds, seed, with_per_group, with_histogram);
        let artifact =
            ReleaseArtifact::seal("conf", 1, hierarchy.clone(), release.clone()).unwrap();
        let indexed = IndexedRelease::new(artifact).unwrap();
        // Probe one level past the hierarchy too: LevelOutOfRange must
        // agree between the paths.
        for level in 0..hierarchy.level_count() + 1 {
            for (variant, right, raw_nodes, raw_group) in &queries {
                let query = materialize(*variant, *right, raw_nodes, *raw_group, &graph);
                let want = baseline(&hierarchy, &release, level, &query);
                let got = indexed_outcome(&indexed, level, &query);
                prop_assert!(
                    !matches!(want, Outcome::Unexpected(_)),
                    "baseline produced an unexpected error for {query:?}: {want:?}"
                );
                prop_assert_eq!(
                    &want, &got,
                    "level {} {:?}: baseline {:?} vs indexed {:?}",
                    level, query, &want, &got
                );
            }
        }
    }

    /// Save → load → answer round trip, per variant: the loaded
    /// artifact is equal and every variant answers bit-identically from
    /// its re-built index.
    #[test]
    fn artifact_round_trip_answers_identically_per_variant(
        graph in graph_strategy(),
        rounds in 1u32..4,
        seed in 0u64..50,
        epoch in 0u64..1000,
        with_histogram in proptest::bool::ANY,
    ) {
        let (hierarchy, release) = published(&graph, rounds, seed, true, with_histogram);
        let artifact =
            ReleaseArtifact::seal("conf", epoch, hierarchy.clone(), release).unwrap();
        let mut buf = Vec::new();
        artifact.write_json(&mut buf).unwrap();
        let loaded = ReleaseArtifact::read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(&artifact, &loaded);

        let from_original = IndexedRelease::new(artifact).unwrap();
        let from_loaded = IndexedRelease::new(loaded).unwrap();
        let variants = [
            Query::SubsetCount(SubsetQuery {
                side: Side::Left,
                nodes: (0..graph.left_count().min(6)).collect(),
            }),
            Query::SubsetCount(SubsetQuery { side: Side::Right, nodes: vec![] }),
            Query::GroupMass { side: Side::Left, group: 0 },
            Query::GroupMass { side: Side::Right, group: 0 },
            Query::DegreeHistogram { side: Side::Left },
            Query::SideTotal { side: Side::Left },
            Query::SideTotal { side: Side::Right },
        ];
        for level in 0..hierarchy.level_count() {
            for query in &variants {
                prop_assert_eq!(
                    indexed_outcome(&from_original, level, query),
                    indexed_outcome(&from_loaded, level, query),
                    "level {} {:?} answers drifted across the round trip",
                    level, query
                );
            }
        }
    }
}
