//! Thread-count invariance of the batched answering path.
//!
//! Serving is RNG-free pure post-processing, so this is the degenerate
//! case of the `docs/determinism.md` convention: there are no per-task
//! seeds to discipline, and batch output must be bit-identical to the
//! sequential loop at every thread count (the in-tree rayon stand-in
//! re-reads `RAYON_NUM_THREADS` per call, making the count flippable
//! mid-process). Memoization must not break this either: a cache-warm
//! service returns the same bits as a cold one.

use std::sync::Mutex;

use gdp_core::{
    DisclosureConfig, MultiLevelDiscloser, Privilege, Query, ReleaseArtifact,
    SpecializationConfig, Specializer,
};
use gdp_graph::Side;
use gdp_serve::{AnswerService, IndexedRelease, ReleaseStore, SubsetQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_thread_count<R>(threads: &str, f: impl FnOnce() -> R) -> R {
    let prior = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let out = f();
    match prior {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn service() -> AnswerService {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = gdp_datagen::engine::GraphModel::ErdosRenyi {
        left: 500,
        right: 500,
        edges: 4_000,
    }
    .generate(&mut rng);
    let hierarchy = Specializer::new(SpecializationConfig::paper_default(5).unwrap())
        .specialize(&graph, &mut rng)
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.7, 1e-6)
            .unwrap()
            .with_queries(vec![Query::PerGroupCounts]),
    )
    .disclose(&graph, &hierarchy, &mut rng)
    .unwrap();
    let artifact = ReleaseArtifact::seal("det", 1, hierarchy, release).unwrap();
    let mut store = ReleaseStore::new();
    store.insert(IndexedRelease::new(artifact).unwrap()).unwrap();
    AnswerService::new(store)
}

fn workload(n_left: u32) -> Vec<SubsetQuery> {
    let mut rng = StdRng::seed_from_u64(78);
    (0..200)
        .map(|_| {
            let mut nodes = Vec::with_capacity(16);
            while nodes.len() < 16 {
                let node = rng.gen_range(0..n_left);
                if !nodes.contains(&node) {
                    nodes.push(node);
                }
            }
            SubsetQuery {
                side: Side::Left,
                nodes,
            }
        })
        .collect()
}

#[test]
fn batch_answers_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let queries = workload(500);
    let answers: Vec<Vec<f64>> = ["1", "4", "13"]
        .iter()
        .map(|threads| {
            with_thread_count(threads, || {
                // A fresh (cache-cold) service per thread count.
                service()
                    .answer_batch("det", 1, Privilege::new(1), 1, &queries)
                    .unwrap()
            })
        })
        .collect();
    for other in &answers[1..] {
        assert_eq!(answers[0].len(), other.len());
        for (x, y) in answers[0].iter().zip(other) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn warm_cache_answers_equal_cold_answers() {
    let _guard = ENV_LOCK.lock().unwrap();
    let queries = workload(500);
    let service = service();
    let cold = service
        .answer_batch("det", 1, Privilege::full(), 2, &queries)
        .unwrap();
    let warm = service
        .answer_batch("det", 1, Privilege::full(), 2, &queries)
        .unwrap();
    for (x, y) in cold.iter().zip(&warm) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    let stats = service.cache_stats();
    assert!(stats.hits >= queries.len() as u64, "stats {stats:?}");
}
