//! Thread-count invariance of the batched answering path.
//!
//! Serving is RNG-free pure post-processing, so this is the degenerate
//! case of the `docs/determinism.md` convention: there are no per-task
//! seeds to discipline, and batch output must be bit-identical to the
//! sequential loop at every thread count (the in-tree rayon stand-in
//! re-reads `RAYON_NUM_THREADS` per call, making the count flippable
//! mid-process). Memoization must not break this either: a cache-warm
//! service returns the same bits as a cold one.

use std::sync::Mutex;

use gdp_core::{
    DisclosureConfig, MultiLevelDiscloser, Privilege, Query, ReleaseArtifact,
    SpecializationConfig, Specializer,
};
use gdp_graph::Side;
use gdp_serve::{
    AnswerService, IndexedRelease, Query as Query2, ReleaseStore, SubsetQuery, TypedAnswer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_thread_count<R>(threads: &str, f: impl FnOnce() -> R) -> R {
    let prior = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let out = f();
    match prior {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

fn service() -> AnswerService {
    let mut rng = StdRng::seed_from_u64(77);
    let graph = gdp_datagen::engine::GraphModel::ErdosRenyi {
        left: 500,
        right: 500,
        edges: 4_000,
    }
    .generate(&mut rng);
    let hierarchy = Specializer::new(SpecializationConfig::paper_default(5).unwrap())
        .specialize(&graph, &mut rng)
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.7, 1e-6)
            .unwrap()
            .with_queries(vec![
                Query::PerGroupCounts,
                Query::LeftDegreeHistogram { max_degree: 24 },
            ]),
    )
    .disclose(&graph, &hierarchy, &mut rng)
    .unwrap();
    let artifact = ReleaseArtifact::seal("det", 1, hierarchy, release).unwrap();
    let store = ReleaseStore::new();
    store.insert(IndexedRelease::new(artifact).unwrap()).unwrap();
    AnswerService::new(store)
}

/// A sealed artifact for concurrency tests that need fresh epochs.
fn sealed(epoch: u64, seed: u64) -> ReleaseArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = gdp_datagen::engine::GraphModel::ErdosRenyi {
        left: 120,
        right: 120,
        edges: 600,
    }
    .generate(&mut rng);
    let hierarchy = Specializer::new(SpecializationConfig::paper_default(3).unwrap())
        .specialize(&graph, &mut rng)
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.7, 1e-6)
            .unwrap()
            .with_queries(vec![Query::PerGroupCounts]),
    )
    .disclose(&graph, &hierarchy, &mut rng)
    .unwrap();
    ReleaseArtifact::seal("det", epoch, hierarchy, release).unwrap()
}

fn workload(n_left: u32) -> Vec<SubsetQuery> {
    let mut rng = StdRng::seed_from_u64(78);
    (0..200)
        .map(|_| {
            let mut nodes = Vec::with_capacity(16);
            while nodes.len() < 16 {
                let node = rng.gen_range(0..n_left);
                if !nodes.contains(&node) {
                    nodes.push(node);
                }
            }
            SubsetQuery {
                side: Side::Left,
                nodes,
            }
        })
        .collect()
}

/// A mixed typed workload cycling through every `Query` variant.
fn typed_workload(n_left: u32) -> Vec<Query2> {
    workload(n_left)
        .into_iter()
        .enumerate()
        .map(|(i, subset)| match i % 4 {
            0 => Query2::SubsetCount(subset),
            1 => Query2::GroupMass {
                side: Side::Left,
                group: (i % 3) as u32,
            },
            2 => Query2::DegreeHistogram { side: Side::Left },
            _ => Query2::SideTotal { side: Side::Right },
        })
        .collect()
}

#[test]
fn batch_answers_bit_identical_across_thread_counts() {
    // The docs/determinism.md checklist thread counts: 1, 2, 8.
    let _guard = ENV_LOCK.lock().unwrap();
    let queries = workload(500);
    let answers: Vec<Vec<f64>> = ["1", "2", "8"]
        .iter()
        .map(|threads| {
            with_thread_count(threads, || {
                // A fresh (cache-cold) service per thread count.
                service()
                    .answer_batch("det", 1, Privilege::new(1), 1, &queries)
                    .unwrap()
            })
        })
        .collect();
    for other in &answers[1..] {
        assert_eq!(answers[0].len(), other.len());
        for (x, y) in answers[0].iter().zip(other) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn typed_batch_answers_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let queries = typed_workload(500);
    let answers: Vec<Vec<TypedAnswer>> = ["1", "2", "8"]
        .iter()
        .map(|threads| {
            with_thread_count(threads, || {
                service()
                    .answer_typed_batch("det", 1, Privilege::new(1), 1, &queries)
                    .unwrap()
            })
        })
        .collect();
    for other in &answers[1..] {
        assert_eq!(answers[0].len(), other.len());
        for (x, y) in answers[0].iter().zip(other) {
            // TypedAnswer equality is bitwise for scalars and bin-wise
            // for histograms (f64 PartialEq — and the released values
            // contain no NaNs, so == is bit equality here).
            assert_eq!(x, y);
        }
    }
}

#[test]
fn sharded_store_serves_under_concurrent_get_and_insert() {
    // Scoped readers hammer epoch 1 through the service while writers
    // register epochs 2..6 into the *same* sharded store mid-flight.
    // Readers must never see torn state: every answer of the fixed
    // workload is bit-identical to the single-threaded answer, and
    // after the join every inserted epoch is present and answerable.
    let _guard = ENV_LOCK.lock().unwrap();
    let service = service();
    let queries = workload(500);
    let expected = service
        .answer_batch("det", 1, Privilege::new(1), 1, &queries)
        .unwrap();
    let writer_epochs: Vec<u64> = (2..6).collect();
    std::thread::scope(|scope| {
        for reader in 0..4 {
            let (service, queries, expected) = (&service, &queries, &expected);
            scope.spawn(move || {
                for round in 0..5 {
                    let got = service
                        .answer_batch("det", 1, Privilege::new(1), 1, queries)
                        .unwrap();
                    for (x, y) in expected.iter().zip(&got) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "reader {reader} round {round} drifted"
                        );
                    }
                }
            });
        }
        for &epoch in &writer_epochs {
            let service = &service;
            scope.spawn(move || {
                // Half the writers go through the lazy (sealed) path so
                // first-access promotion races with the readers too.
                if epoch % 2 == 0 {
                    service.store().insert_sealed(sealed(epoch, epoch)).unwrap();
                } else {
                    service
                        .store()
                        .insert(IndexedRelease::new(sealed(epoch, epoch)).unwrap())
                        .unwrap();
                }
                // A duplicate insert from the same thread is refused
                // without disturbing anything.
                assert!(service.store().insert_sealed(sealed(epoch, epoch)).is_err());
            });
        }
    });
    assert_eq!(service.store().epochs("det"), vec![1, 2, 3, 4, 5]);
    assert_eq!(service.store().latest("det").unwrap().artifact().epoch(), 5);
    for epoch in writer_epochs {
        let q = SubsetQuery {
            side: Side::Left,
            nodes: vec![0, 1, 2],
        };
        assert!(service.answer("det", epoch, Privilege::full(), 1, &q).is_ok());
    }
}

#[test]
fn warm_cache_answers_equal_cold_answers() {
    let _guard = ENV_LOCK.lock().unwrap();
    let queries = workload(500);
    let service = service();
    let cold = service
        .answer_batch("det", 1, Privilege::full(), 2, &queries)
        .unwrap();
    let warm = service
        .answer_batch("det", 1, Privilege::full(), 2, &queries)
        .unwrap();
    for (x, y) in cold.iter().zip(&warm) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    let stats = service.cache_stats();
    assert!(stats.hits >= queries.len() as u64, "stats {stats:?}");
}
