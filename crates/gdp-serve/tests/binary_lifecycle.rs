//! Durable-store lifecycle on **binary** (`.gda`) artifacts: the PR-7
//! guarantees — torn-write quarantine, checksum-caught bit rot,
//! hot-reload, retention GC — must hold for the binary format exactly
//! as they do for JSON, plus the one rule mixed-format directories
//! add: the same `(dataset, epoch)` present as both `.json` and `.gda`
//! is a typed duplicate naming both files, never last-scan-wins.

use std::fs;
use std::path::{Path, PathBuf};

use gdp_core::{
    ArtifactFormat, CoreError, DisclosureConfig, MultiLevelDiscloser, Query, ReleaseArtifact,
    SpecializationConfig, Specializer,
};
use gdp_graph::{GraphBuilder, GraphError, LeftId, RightId};
use gdp_serve::lifecycle::QUARANTINE_DIR;
use gdp_serve::{FileOutcome, ReleaseStore, RetentionPolicy, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deliberately tiny sealed artifact (a few KB encoded) so the
/// every-byte corruption sweeps stay fast.
fn artifact(dataset: &str, epoch: u64, seed: u64) -> ReleaseArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(6, 6);
    for (l, r) in [(0, 0), (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (0, 1), (2, 3)] {
        b.add_edge(LeftId::new(l), RightId::new(r)).unwrap();
    }
    let graph = b.build();
    let hierarchy = Specializer::new(SpecializationConfig::median(1).unwrap())
        .specialize(&graph, &mut rng)
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6)
            .unwrap()
            .with_queries(vec![Query::PerGroupCounts, Query::TotalAssociations]),
    )
    .disclose(&graph, &hierarchy, &mut rng)
    .unwrap();
    ReleaseArtifact::seal(dataset, epoch, hierarchy, release).unwrap()
}

fn encoded(a: &ReleaseArtifact) -> Vec<u8> {
    let mut buf = Vec::new();
    a.write_binary(&mut buf).unwrap();
    buf
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdp-binlife-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn publish_as(dir: &Path, a: &ReleaseArtifact, format: ArtifactFormat) -> PathBuf {
    let path = dir.join(ReleaseArtifact::canonical_file_name_as(
        a.dataset(),
        a.epoch(),
        format,
    ));
    a.save_atomic(&path).unwrap();
    path
}

#[test]
fn torn_binary_writes_on_disk_are_quarantined_at_every_probe_cut() {
    let bytes = encoded(&artifact("torn", 1, 11));
    // Header, table, early payload, late payload, one-byte-short.
    let cuts = [
        0,
        7,
        23,
        40,
        bytes.len() / 4,
        bytes.len() / 2,
        3 * bytes.len() / 4,
        bytes.len() - 1,
    ];
    for cut in cuts {
        let dir = fresh_dir(&format!("torn-{cut}"));
        fs::write(dir.join("torn-e1.gda"), &bytes[..cut]).unwrap();
        let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
        assert_eq!(store.len(), 0, "cut {cut} must not serve");
        assert_eq!(report.quarantined(), 1, "cut {cut}: {}", report.summary());
        assert!(
            dir.join(QUARANTINE_DIR).join("torn-e1.gda").exists(),
            "cut {cut}: quarantine must capture the bytes"
        );
        let FileOutcome::Quarantined { reason, .. } = &report.outcomes[0] else {
            panic!("cut {cut}: expected a quarantine outcome: {report:?}");
        };
        assert!(reason.contains("binary format error"), "cut {cut}: {reason}");
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn truncation_at_every_byte_is_a_typed_error_never_a_panic() {
    let bytes = encoded(&artifact("torn", 1, 12));
    for cut in 0..bytes.len() {
        match ReleaseArtifact::read_binary(&bytes[..cut]) {
            Ok(_) => panic!("cut {cut} loaded a torn container"),
            Err(CoreError::Graph(GraphError::Binary { .. })) => {}
            Err(other) => panic!("cut {cut}: unexpected error class: {other}"),
        }
    }
}

#[test]
fn bit_rot_is_caught_by_the_container_digest_and_quarantined() {
    let bytes = encoded(&artifact("rot", 3, 13));
    // One flip in the header, one in the section table, one deep in
    // the payload — including a flip of a noisy value, the exact case
    // JSON needs the canonical-digest re-hash for.
    for byte in [2usize, 30, bytes.len() / 2, bytes.len() - 3] {
        let mut doctored = bytes.clone();
        doctored[byte] ^= 0x10;
        let dir = fresh_dir(&format!("rot-{byte}"));
        fs::write(dir.join("rot-e3.gda"), &doctored).unwrap();
        let err = ReleaseStore::open_dir(&dir).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Core(CoreError::Graph(GraphError::Binary { .. }))
            ),
            "byte {byte}: {err}"
        );
        let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
        assert!(store.is_empty(), "byte {byte} must not serve");
        assert_eq!(report.quarantined(), 1, "byte {byte}: {}", report.summary());
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn merge_dir_hot_reloads_a_live_published_binary_epoch() {
    let dir = fresh_dir("merge");
    let a1 = artifact("d", 1, 41);
    publish_as(&dir, &a1, ArtifactFormat::Binary);
    let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(report.loaded(), 1, "{}", report.summary());
    assert_eq!(store.epochs("d"), vec![1]);

    // A binary epoch lands while the store is live.
    let a2 = artifact("d", 2, 42);
    publish_as(&dir, &a2, ArtifactFormat::Binary);
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.loaded(), 1, "{}", report.summary());
    assert_eq!(store.epochs("d"), vec![1, 2]);
    assert_eq!(*store.get("d", 2).unwrap().artifact(), a2);

    // A staged binary publish (`.gda.tmp`) is left alone by a live
    // re-scan, exactly like a staged JSON one.
    fs::write(dir.join("d-e9.gda.tmp"), "half-written").unwrap();
    let report = store.merge_dir(&dir).unwrap();
    assert_eq!(report.quarantined(), 0, "{}", report.summary());
    assert!(dir.join("d-e9.gda.tmp").exists(), "live tmp must survive");
    fs::remove_file(dir.join("d-e9.gda.tmp")).unwrap();

    // …but a fresh open sweeps it as dead-publish debris.
    fs::write(dir.join("d-e9.gda.tmp"), "half-written").unwrap();
    let (_, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(report.quarantined(), 1, "{}", report.summary());
    assert!(!dir.join("d-e9.gda.tmp").exists());
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gc_durably_deletes_superseded_binary_epochs() {
    let dir = fresh_dir("gc");
    for epoch in 1..=4 {
        publish_as(&dir, &artifact("d", epoch, 50 + epoch), ArtifactFormat::Binary);
    }
    let (store, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    let report = store.gc(&RetentionPolicy::keep_last(1), None);
    assert_eq!(report.evicted(), 3, "{}", report.summary());
    assert_eq!(report.failed_deletions(), 0);
    assert_eq!(store.epochs("d"), vec![4]);
    for epoch in 1..=3u64 {
        let gone = dir.join(ReleaseArtifact::canonical_file_name_as(
            "d",
            epoch,
            ArtifactFormat::Binary,
        ));
        assert!(!gone.exists(), "epoch {epoch} file must be deleted");
    }
    let (reopened, _) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(reopened.epochs("d"), vec![4]);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_format_duplicate_is_a_typed_error_naming_both_files() {
    let dir = fresh_dir("dup");
    let a = artifact("d", 1, 61);
    let bin = publish_as(&dir, &a, ArtifactFormat::Binary);
    let json = publish_as(&dir, &a, ArtifactFormat::Json);

    // Strict open refuses the directory and names both files.
    let err = ReleaseStore::open_dir(&dir).unwrap_err();
    let ServeError::DuplicateRelease {
        dataset,
        epoch,
        paths,
    } = err
    else {
        panic!("expected DuplicateRelease, got {err}");
    };
    assert_eq!((dataset.as_str(), epoch), ("d", 1));
    assert_eq!(
        paths,
        vec![bin.display().to_string(), json.display().to_string()],
        "both colliding files must be named, scan order (.gda first)"
    );

    // Degraded open keeps serving deterministically: the first file in
    // name order (.gda sorts before .json) wins, the twin is reported
    // with both paths and left untouched on disk.
    let (store, report) = ReleaseStore::open_dir_report(&dir).unwrap();
    assert_eq!(store.epochs("d"), vec![1]);
    assert_eq!(report.loaded(), 1, "{}", report.summary());
    assert_eq!(report.already_registered(), 1, "{}", report.summary());
    let dup = report
        .outcomes
        .iter()
        .find_map(|o| match o {
            FileOutcome::AlreadyRegistered { path, existing, .. } => {
                Some((path.clone(), existing.clone()))
            }
            _ => None,
        })
        .expect("duplicate outcome reported");
    assert_eq!(dup.0, json.display().to_string());
    assert_eq!(dup.1, Some(bin.display().to_string()));
    assert!(bin.exists() && json.exists(), "no file is disturbed");

    // Both twins decode to the same artifact, so whichever format an
    // operator deletes, answers cannot change.
    assert_eq!(*store.get("d", 1).unwrap().artifact(), a);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn save_atomic_binary_leaves_no_tmp_and_survives_reopen() {
    let dir = fresh_dir("atomic");
    let a = artifact("d", 1, 71);
    let path = publish_as(&dir, &a, ArtifactFormat::Binary);
    // No staging debris after a successful atomic publish.
    let entries: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(entries, vec!["d-e1.gda"], "{entries:?}");
    assert_eq!(ReleaseArtifact::load(&path).unwrap(), a);
    fs::remove_dir_all(&dir).unwrap();
}
