//! Property suite pinning the lane-path subset gather bit-identical to
//! its scalar fallback.
//!
//! `gdp_serve::kernels::gather_subset` (chunked sweep + check-free
//! ordered gather) and `gather_subset_scalar` (the pre-lane interleaved
//! loop, kept verbatim) must agree on every input: same defect verdict,
//! and — on clean subsets — the same `f64` bits, across subnormal /
//! negative-zero / mixed-magnitude premass values and subset lengths
//! that straddle the lane width and the scalar path's 65 536-node
//! bitmap/sort boundary.

use gdp_serve::kernels::{gather_subset, gather_subset_scalar};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Premass pool exercising the float corners where any change to
/// summation order shows up in the bits.
fn awkward_premass(groups: u32, rng: &mut StdRng) -> Vec<f64> {
    (0..groups)
        .map(|_| match rng.gen_range(0u32..8) {
            0 => f64::MIN_POSITIVE / 2.0,
            1 => -f64::MIN_POSITIVE / 4.0,
            2 => -0.0,
            3 => 0.0,
            4 => 1e16,
            5 => -1e16,
            6 => rng.gen_range(-1.0..1.0),
            _ => rng.gen_range(-1e9..1e9),
        })
        .collect()
}

fn assert_agree(group_of: &[u32], premass: &[f64], nodes: &[u32]) {
    let lane = gather_subset(group_of, premass, nodes);
    let scalar = gather_subset_scalar(group_of, premass, nodes);
    assert_eq!(
        lane.map(f64::to_bits),
        scalar.map(f64::to_bits),
        "lane/scalar divergence at n={} |S|={}",
        group_of.len(),
        nodes.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clean, duplicated and out-of-range subsets against small sides
    /// (the scalar stack-bitmap tier), all remainder shapes.
    #[test]
    fn small_side_subsets_agree(
        n in 1u32..5000,
        groups in 1u32..64,
        len in 0usize..80,
        defect in 0u32..3,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let group_of: Vec<u32> = (0..n).map(|_| rng.gen_range(0..groups)).collect();
        let premass = awkward_premass(groups, &mut rng);
        // Distinct ids by construction: a permutation prefix.
        let mut ids: Vec<u32> = (0..n).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..(i + 1) as u32) as usize);
        }
        let mut nodes: Vec<u32> = ids.iter().take(len).copied().collect();
        match defect {
            1 if !nodes.is_empty() => {
                let dup = nodes[rng.gen_range(0..nodes.len() as u32) as usize];
                nodes.push(dup);
            }
            2 => nodes.insert(rng.gen_range(0..=nodes.len() as u32) as usize, n + rng.gen_range(0u32..10)),
            _ => {}
        }
        assert_agree(&group_of, &premass, &nodes);
    }

    /// The 65 536-node boundary where the scalar fallback switches from
    /// its stack bitmap to sort-based duplicate detection; the lane
    /// path's reusable scratch must agree bitwise on both sides.
    #[test]
    fn bitmap_sort_boundary_agrees(
        offset in 0u32..3,          // n ∈ {65_535, 65_536, 65_537}
        groups in 1u32..64,
        len in 0usize..64,
        defect in 0u32..3,
        seed in 0u64..10_000,
    ) {
        let n = 65_535 + offset;
        let mut rng = StdRng::seed_from_u64(seed);
        let group_of: Vec<u32> = (0..n).map(|v| v.wrapping_mul(2_654_435_761) % groups).collect();
        let premass = awkward_premass(groups, &mut rng);
        // Strided distinct ids spanning the whole side.
        let stride = (n / 97).max(1);
        let mut nodes: Vec<u32> = (0..len as u32).map(|i| (i * stride) % n).collect();
        nodes.sort_unstable();
        nodes.dedup();
        match defect {
            1 if !nodes.is_empty() => {
                let dup = nodes[rng.gen_range(0..nodes.len() as u32) as usize];
                nodes.push(dup);
            }
            2 => nodes.push(n + rng.gen_range(0u32..10)),
            _ => {}
        }
        assert_agree(&group_of, &premass, &nodes);
    }
}
