//! Property tests for the serving seam — the ISSUE-4 acceptance pins:
//!
//! 1. [`IndexedRelease`] estimates are **bit-identical** to the scan
//!    path [`SubsetCountEstimator`], success and error cases alike.
//! 2. Artifact save → load → answer is lossless (loaded artifacts are
//!    equal and answer identically).
//! 3. [`AnswerService`] refuses every level finer than the caller's
//!    [`Privilege`], for all privilege/level combinations.

use proptest::prelude::*;

use gdp_core::answering::SubsetCountEstimator;
use gdp_core::{
    CoreError, DisclosureConfig, GroupHierarchy, MultiLevelDiscloser, MultiLevelRelease,
    Privilege, Query, ReleaseArtifact, SpecializationConfig, Specializer,
};
use gdp_graph::{BipartiteGraph, GraphBuilder, LeftId, RightId, Side};
use gdp_serve::{AnswerService, IndexedRelease, ReleaseStore, ServeError, SubsetQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (3u32..30, 3u32..30)
        .prop_flat_map(|(nl, nr)| {
            let edges = proptest::collection::vec((0..nl, 0..nr), 1..160);
            (Just(nl), Just(nr), edges)
        })
        .prop_map(|(nl, nr, edges)| {
            let mut b = GraphBuilder::new(nl, nr);
            for (l, r) in edges {
                b.add_edge(LeftId::new(l), RightId::new(r)).unwrap();
            }
            b.build()
        })
}

fn published(
    graph: &BipartiteGraph,
    rounds: u32,
    seed: u64,
) -> (GroupHierarchy, MultiLevelRelease) {
    let hierarchy = Specializer::new(SpecializationConfig::median(rounds).unwrap())
        .specialize(graph, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.8, 1e-6)
            .unwrap()
            .with_queries(vec![Query::TotalAssociations, Query::PerGroupCounts]),
    )
    .disclose(graph, &hierarchy, &mut StdRng::seed_from_u64(seed ^ 0xABCD))
    .unwrap();
    (hierarchy, release)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn indexed_gather_is_bit_identical_to_scan_estimator(
        graph in graph_strategy(),
        rounds in 1u32..4,
        seed in 0u64..50,
        subsets in proptest::collection::vec(
            (proptest::bool::ANY, proptest::collection::vec(0u64..1 << 32, 1..24)),
            1..12,
        ),
    ) {
        let (hierarchy, release) = published(&graph, rounds, seed);
        let artifact =
            ReleaseArtifact::seal("prop", 1, hierarchy.clone(), release.clone()).unwrap();
        let indexed = IndexedRelease::new(artifact).unwrap();
        for level in 0..hierarchy.level_count() {
            let scan = SubsetCountEstimator::new(
                release.level(level).unwrap(),
                hierarchy.level(level).unwrap(),
            )
            .unwrap();
            for (right, raw) in &subsets {
                let side = if *right { Side::Right } else { Side::Left };
                let n = if *right { graph.right_count() } else { graph.left_count() };
                // Map raw draws into a range that includes both valid
                // and slightly out-of-range nodes, and keeps repeats.
                let nodes: Vec<u32> =
                    raw.iter().map(|&v| (v % (n as u64 + 3)) as u32).collect();
                let a = scan.estimate(side, &nodes);
                let b = indexed.estimate(level, side, &nodes);
                match (a, b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "level {} {} {:?}: {} vs {}", level, side, nodes, x, y
                    ),
                    (
                        Err(CoreError::SubsetNodeOutOfRange { node: na, .. }),
                        Err(ServeError::Core(CoreError::SubsetNodeOutOfRange { node: nb, .. })),
                    ) => prop_assert_eq!(na, nb),
                    (
                        Err(CoreError::DuplicateSubsetNode { node: na, .. }),
                        Err(ServeError::Core(CoreError::DuplicateSubsetNode { node: nb, .. })),
                    ) => prop_assert_eq!(na, nb),
                    (a, b) => prop_assert!(
                        false,
                        "paths disagree on {:?}: scan {:?} vs indexed {:?}", nodes, a, b
                    ),
                }
            }
        }
    }

    #[test]
    fn artifact_round_trip_is_lossless_and_answers_identically(
        graph in graph_strategy(),
        rounds in 1u32..4,
        seed in 0u64..50,
        epoch in 0u64..1000,
    ) {
        let (hierarchy, release) = published(&graph, rounds, seed);
        let artifact = ReleaseArtifact::seal("prop", epoch, hierarchy, release).unwrap();
        let mut buf = Vec::new();
        artifact.write_json(&mut buf).unwrap();
        let loaded = ReleaseArtifact::read_json(buf.as_slice()).unwrap();
        prop_assert_eq!(&artifact, &loaded);

        // Equal artifacts must answer identically through the service.
        let queries: Vec<SubsetQuery> = (0..6u32)
            .map(|k| SubsetQuery {
                side: Side::Left,
                nodes: (0..=k.min(graph.left_count() - 1)).collect(),
            })
            .collect();
        let serve = |a: ReleaseArtifact| -> Vec<f64> {
            let store = ReleaseStore::new();
            store.insert(IndexedRelease::new(a).unwrap()).unwrap();
            let service = AnswerService::new(store);
            let level = artifact.level_count() - 1;
            service
                .answer_batch("prop", epoch, Privilege::full(), level, &queries)
                .unwrap()
        };
        let from_original = serve(artifact.clone());
        let from_loaded = serve(loaded);
        for (x, y) in from_original.iter().zip(&from_loaded) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn service_refuses_levels_finer_than_privilege(
        graph in graph_strategy(),
        rounds in 1u32..4,
        seed in 0u64..50,
    ) {
        let (hierarchy, release) = published(&graph, rounds, seed);
        let levels = hierarchy.level_count();
        let artifact = ReleaseArtifact::seal("prop", 1, hierarchy, release).unwrap();
        let store = ReleaseStore::new();
        store.insert(IndexedRelease::new(artifact).unwrap()).unwrap();
        let service = AnswerService::new(store);
        let query = SubsetQuery { side: Side::Left, nodes: vec![0, 1] };
        for finest in 0..levels + 2 {
            let privilege = Privilege::new(finest);
            for level in 0..levels {
                let got = service.answer("prop", 1, privilege, level, &query);
                if level < finest {
                    prop_assert!(
                        matches!(
                            got,
                            Err(ServeError::Core(CoreError::AccessDenied { .. }))
                        ),
                        "privilege {} was served level {}", finest, level
                    );
                } else {
                    prop_assert!(got.is_ok(), "privilege {} refused level {}", finest, level);
                }
            }
        }
    }
}
