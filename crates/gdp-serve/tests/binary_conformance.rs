//! Binary==JSON conformance suite — the ISSUE-8 acceptance pins.
//!
//! A release published as a `.gda` binary container must be
//! **indistinguishable** from its JSON twin to every consumer: equal
//! manifests (same canonical-JSON content digest), equal artifacts,
//! and — the part operators actually depend on — bit-identical answers
//! for every [`Query`] variant at every level, including typed-error
//! precedence on out-of-range levels, nodes and groups.
//!
//! The second half is the corruption-fuzz pin: no truncation and no
//! single-bit flip of a real artifact container may ever panic or
//! produce a silently-wrong answer — every such file yields a typed
//! error (and quarantine, covered in `binary_lifecycle.rs`).

use proptest::prelude::*;

use gdp_core::{
    CoreError, DisclosureConfig, MultiLevelDiscloser, Query as CoreQuery, ReleaseArtifact,
    SpecializationConfig, Specializer,
};
use gdp_graph::{BipartiteGraph, GraphBuilder, GraphError, LeftId, RightId, Side};
use gdp_serve::{IndexedRelease, Query, ServeError, SubsetQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Answers normalized for bitwise comparison: floats by bit pattern,
/// errors by class and first-offender payload — the same alphabet the
/// serving conformance suite (`conformance.rs`) pins against the core
/// rescan baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Scalar(u64),
    Histogram(Vec<u64>),
    LevelOutOfRange(usize),
    NotIndexed,
    NotReleased,
    NodeOutOfRange(u32),
    DuplicateNode(u32),
    GroupOutOfRange(u32),
    Unexpected(String),
}

fn outcome(indexed: &IndexedRelease, level: usize, query: &Query) -> Outcome {
    match indexed.answer(level, query) {
        Ok(answer) => match answer.histogram() {
            Some(bins) => Outcome::Histogram(bins.iter().map(|v| v.to_bits()).collect()),
            None => Outcome::Scalar(answer.scalar().unwrap().to_bits()),
        },
        Err(ServeError::LevelNotIndexed { .. }) => Outcome::NotIndexed,
        Err(ServeError::StatisticNotReleased { .. }) => Outcome::NotReleased,
        Err(ServeError::Core(CoreError::LevelOutOfRange { level, .. })) => {
            Outcome::LevelOutOfRange(level)
        }
        Err(ServeError::Core(CoreError::SubsetNodeOutOfRange { node, .. })) => {
            Outcome::NodeOutOfRange(node)
        }
        Err(ServeError::Core(CoreError::DuplicateSubsetNode { node, .. })) => {
            Outcome::DuplicateNode(node)
        }
        Err(ServeError::Core(CoreError::GroupOutOfRange { group, .. })) => {
            Outcome::GroupOutOfRange(group)
        }
        Err(other) => Outcome::Unexpected(format!("{other:?}")),
    }
}

fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (3u32..24, 3u32..24)
        .prop_flat_map(|(nl, nr)| {
            let edges = proptest::collection::vec((0..nl, 0..nr), 1..120);
            (Just(nl), Just(nr), edges)
        })
        .prop_map(|(nl, nr, edges)| {
            let mut b = GraphBuilder::new(nl, nr);
            for (l, r) in edges {
                b.add_edge(LeftId::new(l), RightId::new(r)).unwrap();
            }
            b.build()
        })
}

/// A random sealed artifact: hierarchy depth, query set (per-group and
/// histogram releases independently present) and noise all vary.
fn sealed(
    graph: &BipartiteGraph,
    rounds: u32,
    seed: u64,
    epoch: u64,
    with_per_group: bool,
    with_histogram: bool,
) -> ReleaseArtifact {
    let hierarchy = Specializer::new(SpecializationConfig::median(rounds).unwrap())
        .specialize(graph, &mut StdRng::seed_from_u64(seed))
        .unwrap();
    let mut queries = vec![CoreQuery::TotalAssociations, CoreQuery::GroupSizeCounts];
    if with_per_group {
        queries.push(CoreQuery::PerGroupCounts);
    }
    if with_histogram {
        queries.push(CoreQuery::LeftDegreeHistogram { max_degree: 10 });
    }
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.8, 1e-6)
            .unwrap()
            .with_queries(queries),
    )
    .disclose(graph, &hierarchy, &mut StdRng::seed_from_u64(seed ^ 0xF00D))
    .unwrap();
    ReleaseArtifact::seal("conf", epoch, hierarchy, release).unwrap()
}

/// Every serving query variant, biased to straddle valid ranges so the
/// error-precedence paths (out-of-range node, duplicate node,
/// out-of-range group) are exercised alongside the happy ones.
fn probes(graph: &BipartiteGraph) -> Vec<Query> {
    let nl = graph.left_count();
    let mut out = vec![
        Query::SubsetCount(SubsetQuery {
            side: Side::Left,
            nodes: (0..nl.min(5)).collect(),
        }),
        Query::SubsetCount(SubsetQuery {
            side: Side::Right,
            nodes: vec![],
        }),
        // Out-of-range node, and a duplicate — error payloads must
        // survive the format change bit-for-bit too.
        Query::SubsetCount(SubsetQuery {
            side: Side::Left,
            nodes: vec![nl + 7],
        }),
        Query::SubsetCount(SubsetQuery {
            side: Side::Left,
            nodes: vec![0, 0],
        }),
        Query::GroupMass {
            side: Side::Left,
            group: 0,
        },
        Query::GroupMass {
            side: Side::Right,
            group: u32::MAX,
        },
        Query::DegreeHistogram { side: Side::Left },
        Query::DegreeHistogram { side: Side::Right },
        Query::SideTotal { side: Side::Left },
        Query::SideTotal { side: Side::Right },
    ];
    out.push(Query::SubsetCount(SubsetQuery {
        side: Side::Right,
        nodes: vec![graph.right_count(), 0],
    }));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// THE binary==JSON pin: a random sealed artifact saved in both
    /// formats loads to equal artifacts with bit-identical manifests
    /// (content digest included), and every query variant answers
    /// bit-identically at every level — one past the hierarchy
    /// included, so `LevelOutOfRange` precedence agrees too.
    #[test]
    fn binary_and_json_twins_answer_bit_identically(
        graph in graph_strategy(),
        rounds in 1u32..4,
        seed in 0u64..60,
        epoch in 0u64..1000,
        with_per_group in proptest::bool::ANY,
        with_histogram in proptest::bool::ANY,
    ) {
        let artifact = sealed(&graph, rounds, seed, epoch, with_per_group, with_histogram);

        let mut json = Vec::new();
        artifact.write_json(&mut json).unwrap();
        let mut binary = Vec::new();
        artifact.write_binary(&mut binary).unwrap();

        let from_json = ReleaseArtifact::read_json(json.as_slice()).unwrap();
        let from_binary = ReleaseArtifact::read_binary(binary.as_slice()).unwrap();

        // Equal artifacts, bit-identical manifests: the binary twin
        // carries the same canonical-JSON content digest verbatim.
        prop_assert_eq!(&from_json, &from_binary);
        prop_assert_eq!(from_json.manifest(), from_binary.manifest());
        prop_assert_eq!(
            from_binary.manifest().content_digest,
            artifact.manifest().content_digest
        );

        let levels = artifact.level_count();
        let json_indexed = IndexedRelease::new(from_json).unwrap();
        let binary_indexed = IndexedRelease::new(from_binary).unwrap();
        for level in 0..levels + 1 {
            for query in probes(&graph) {
                let j = outcome(&json_indexed, level, &query);
                let b = outcome(&binary_indexed, level, &query);
                prop_assert!(
                    !matches!(j, Outcome::Unexpected(_)),
                    "JSON path produced an unexpected error for {:?}: {:?}", query, j
                );
                prop_assert_eq!(
                    &j, &b,
                    "level {} {:?}: json {:?} vs binary {:?}", level, &query, &j, &b
                );
            }
        }
    }

    /// Corruption fuzz on random artifacts: every prefix truncation of
    /// the container is a typed `GraphError::Binary` — never a panic,
    /// never a silently-shorter artifact.
    #[test]
    fn truncating_a_random_binary_artifact_anywhere_is_typed(
        graph in graph_strategy(),
        seed in 0u64..60,
        cut_fraction in 0.0f64..1.0,
    ) {
        let artifact = sealed(&graph, 1, seed, 1, true, false);
        let mut bytes = Vec::new();
        artifact.write_binary(&mut bytes).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let err = ReleaseArtifact::read_binary(&bytes[..cut.min(bytes.len() - 1)])
            .expect_err("a truncated container must never load");
        prop_assert!(
            matches!(err, CoreError::Graph(GraphError::Binary { .. })),
            "cut {}: unexpected error class: {}", cut, err
        );
    }

    /// Corruption fuzz, bit-flip edition: any single flipped bit —
    /// header, section table, or payload — fails the container digest
    /// with a typed error. (The exhaustive every-byte×every-bit sweep
    /// runs in `gdp-core`'s codec tests; this re-checks the property
    /// end-to-end on randomly shaped artifacts.)
    #[test]
    fn flipping_any_bit_of_a_random_binary_artifact_is_typed(
        graph in graph_strategy(),
        seed in 0u64..60,
        position in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let artifact = sealed(&graph, 1, seed, 1, true, false);
        let mut bytes = Vec::new();
        artifact.write_binary(&mut bytes).unwrap();
        let byte = ((bytes.len() as f64) * position) as usize % bytes.len();
        bytes[byte] ^= 1 << bit;
        let err = ReleaseArtifact::read_binary(bytes.as_slice())
            .expect_err("a bit-flipped container must never load");
        prop_assert!(
            matches!(err, CoreError::Graph(GraphError::Binary { .. })),
            "byte {} bit {}: unexpected error class: {}", byte, bit, err
        );
    }
}

/// A `.gda` → `.json` re-encode preserves the manifest chain: the
/// content digest written at sealing time survives both directions, so
/// converted artifacts keep verifying.
#[test]
fn binary_json_reencode_preserves_the_digest_chain() {
    let mut b = GraphBuilder::new(8, 8);
    for i in 0..8 {
        b.add_edge(LeftId::new(i), RightId::new(i)).unwrap();
        b.add_edge(LeftId::new(i), RightId::new((i + 1) % 8)).unwrap();
    }
    let graph = b.build();
    let artifact = sealed(&graph, 2, 99, 5, true, true);
    let digest = artifact.manifest().content_digest;
    assert!(digest.is_some());

    let mut binary = Vec::new();
    artifact.write_binary(&mut binary).unwrap();
    let decoded = ReleaseArtifact::read_binary(binary.as_slice()).unwrap();
    let mut json = Vec::new();
    decoded.write_json(&mut json).unwrap();
    let reloaded = ReleaseArtifact::read_json(json.as_slice()).unwrap();
    assert_eq!(reloaded.manifest().content_digest, digest);
    let mut binary_again = Vec::new();
    reloaded.write_binary(&mut binary_again).unwrap();
    assert_eq!(binary, binary_again, "binary encoding is deterministic");
    assert_eq!(reloaded, artifact);
}
