//! The privilege-gated, concurrent answering front door.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use gdp_core::Privilege;
use gdp_graph::Side;

use crate::error::ServeError;
use crate::store::ReleaseStore;
use crate::Result;

/// One subset-count query: "how many associations touch *these* nodes
/// on this side?"
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubsetQuery {
    /// Which side the subset lives on.
    pub side: Side,
    /// The queried node indices (must be in range and duplicate-free).
    pub nodes: Vec<u32>,
}

/// Memoization counters, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered straight from the memo table.
    pub hits: u64,
    /// Requests that computed a fresh estimate.
    pub misses: u64,
    /// Distinct memoized queries.
    pub entries: usize,
}

type CacheKey = (String, u64, usize, SubsetQuery);

/// Answers subset-count queries from a [`ReleaseStore`] under the
/// paper's graded-privilege model — the serving path a heavy-traffic
/// deployment runs.
///
/// Three properties define the service:
///
/// * **Every request is privilege-checked.** The artifact's monotone
///   [`AccessPolicy`](gdp_core::AccessPolicy) is enforced before any
///   value is touched; a reader cleared for level `p` can answer from
///   levels `p..` and nothing finer, exactly the paper's
///   `I_{L,i}`-per-audience mapping.
/// * **Batched workloads fan out over rayon.** Answering is RNG-free
///   pure post-processing, so batch output is identical to a
///   sequential loop at any thread count (the degenerate case of the
///   `docs/determinism.md` convention: no per-task randomness at all).
/// * **Repeated queries are memoized.** Post-processing invariance
///   means re-answering a released value costs no privacy budget, so
///   caching is always *sound*; memory is the only constraint, and the
///   memo table stops admitting new entries at
///   [`AnswerService::CACHE_CAPACITY`] (existing entries keep hitting —
///   correctness never depends on the cache, every miss just recomputes
///   the gather). The memo key is `(dataset, epoch, level, query)`.
#[derive(Debug)]
pub struct AnswerService {
    store: ReleaseStore,
    cache: Mutex<HashMap<CacheKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AnswerService {
    /// Upper bound on memoized entries: beyond this the table stops
    /// admitting new keys (misses still answer, they just recompute),
    /// bounding memory on workloads of mostly-unique queries.
    pub const CACHE_CAPACITY: usize = 1 << 20;

    /// Wraps a store with an empty memo table.
    pub fn new(store: ReleaseStore) -> Self {
        Self {
            store,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ReleaseStore {
        &self.store
    }

    /// Answers one subset-count query from `(dataset, epoch)` at
    /// `level`, enforcing `privilege`.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownRelease`] for an unregistered key.
    /// * [`ServeError::Core`] with
    ///   [`CoreError::AccessDenied`](gdp_core::CoreError::AccessDenied)
    ///   when `level` is finer than `privilege` allows, or
    ///   [`CoreError::LevelOutOfRange`](gdp_core::CoreError::LevelOutOfRange)
    ///   for unknown levels — access is checked **before** the query is
    ///   looked at.
    /// * The estimate's own errors
    ///   ([`IndexedRelease::estimate`](crate::IndexedRelease::estimate)).
    pub fn answer(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
        query: &SubsetQuery,
    ) -> Result<f64> {
        let indexed = self.store.get(dataset, epoch)?;
        indexed
            .policy()
            .check(privilege, level)
            .map_err(ServeError::Core)?;
        let key: CacheKey = (dataset.to_string(), epoch, level, query.clone());
        if let Some(&value) = self.cache.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(value);
        }
        let value = indexed.estimate(level, query.side, &query.nodes)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock().expect("cache lock");
        if cache.len() < Self::CACHE_CAPACITY {
            cache.insert(key, value);
        }
        Ok(value)
    }

    /// Answers a batch of queries against one `(dataset, epoch, level)`
    /// under one privilege, fanning out over rayon. The privilege is
    /// checked once up front so a denied workload is refused as a
    /// whole, before any answer is computed.
    ///
    /// # Errors
    ///
    /// Same as [`AnswerService::answer`]; for malformed subsets, which
    /// failing query's error surfaces is unspecified.
    pub fn answer_batch(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
        queries: &[SubsetQuery],
    ) -> Result<Vec<f64>> {
        let indexed = self.store.get(dataset, epoch)?;
        indexed
            .policy()
            .check(privilege, level)
            .map_err(ServeError::Core)?;
        queries
            .par_iter()
            .map(|query| self.answer(dataset, epoch, privilege, level, query))
            .collect()
    }

    /// The finest level `privilege` may read from `(dataset, epoch)`,
    /// or `None` when the privilege is coarser than the whole
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownRelease`] for an unregistered key.
    pub fn finest_allowed(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
    ) -> Result<Option<usize>> {
        let indexed = self.store.get(dataset, epoch)?;
        let mut range = indexed.policy().accessible_levels(privilege);
        Ok(range.next())
    }

    /// Current memoization counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cache.lock().expect("cache lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexedRelease;
    use gdp_core::{
        CoreError, DisclosureConfig, MultiLevelDiscloser, Query, ReleaseArtifact,
        SpecializationConfig, Specializer,
    };
    use gdp_datagen::{DblpConfig, DblpGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service() -> AnswerService {
        let mut rng = StdRng::seed_from_u64(90);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(3).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.9, 1e-6)
                .unwrap()
                .with_queries(vec![Query::PerGroupCounts]),
        )
        .disclose(&graph, &hierarchy, &mut rng)
        .unwrap();
        let artifact = ReleaseArtifact::seal("dblp", 4, hierarchy, release).unwrap();
        let mut store = ReleaseStore::new();
        store.insert(IndexedRelease::new(artifact).unwrap()).unwrap();
        AnswerService::new(store)
    }

    fn query(nodes: &[u32]) -> SubsetQuery {
        SubsetQuery {
            side: Side::Left,
            nodes: nodes.to_vec(),
        }
    }

    #[test]
    fn privilege_gates_every_level() {
        let service = service();
        let q = query(&[0, 1, 2]);
        let levels = service.store().get("dblp", 4).unwrap().level_count();
        for finest in 0..levels {
            let privilege = Privilege::new(finest);
            for level in 0..levels {
                let got = service.answer("dblp", 4, privilege, level, &q);
                if level >= finest {
                    assert!(got.is_ok(), "privilege {finest} refused level {level}");
                } else {
                    assert!(matches!(
                        got.unwrap_err(),
                        ServeError::Core(CoreError::AccessDenied { .. })
                    ));
                }
            }
        }
    }

    #[test]
    fn unknown_keys_and_levels_are_typed() {
        let service = service();
        let q = query(&[0]);
        assert!(matches!(
            service.answer("dblp", 99, Privilege::full(), 0, &q).unwrap_err(),
            ServeError::UnknownRelease { epoch: 99, .. }
        ));
        assert!(matches!(
            service.answer("movies", 4, Privilege::full(), 0, &q).unwrap_err(),
            ServeError::UnknownRelease { .. }
        ));
        assert!(matches!(
            service.answer("dblp", 4, Privilege::full(), 99, &q).unwrap_err(),
            ServeError::Core(CoreError::LevelOutOfRange { level: 99, .. })
        ));
    }

    #[test]
    fn memoization_hits_on_repeats_without_changing_answers() {
        let service = service();
        let q = query(&[3, 1, 7]);
        let first = service.answer("dblp", 4, Privilege::full(), 1, &q).unwrap();
        let again = service.answer("dblp", 4, Privilege::full(), 1, &q).unwrap();
        assert_eq!(first.to_bits(), again.to_bits());
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // A different level is a different memo entry.
        service.answer("dblp", 4, Privilege::full(), 2, &q).unwrap();
        assert_eq!(service.cache_stats().entries, 2);
    }

    #[test]
    fn batch_is_checked_before_answering_and_matches_singles() {
        let service = service();
        let queries: Vec<SubsetQuery> =
            (0..20u32).map(|k| query(&(0..=k).collect::<Vec<_>>())).collect();
        // Denied as a whole…
        assert!(matches!(
            service
                .answer_batch("dblp", 4, Privilege::new(2), 0, &queries)
                .unwrap_err(),
            ServeError::Core(CoreError::AccessDenied { .. })
        ));
        assert_eq!(service.cache_stats().misses, 0, "no answer was computed");
        // …and allowed batches equal the sequential loop.
        let batch = service
            .answer_batch("dblp", 4, Privilege::new(2), 2, &queries)
            .unwrap();
        for (q, &got) in queries.iter().zip(&batch) {
            let single = service.answer("dblp", 4, Privilege::new(2), 2, q).unwrap();
            assert_eq!(single.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn finest_allowed_follows_policy() {
        let service = service();
        assert_eq!(
            service.finest_allowed("dblp", 4, Privilege::full()).unwrap(),
            Some(0)
        );
        assert_eq!(
            service.finest_allowed("dblp", 4, Privilege::new(3)).unwrap(),
            Some(3)
        );
        assert_eq!(
            service.finest_allowed("dblp", 4, Privilege::new(99)).unwrap(),
            None
        );
        assert!(service.finest_allowed("dblp", 9, Privilege::full()).is_err());
    }
}
