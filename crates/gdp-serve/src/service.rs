//! The privilege-gated, concurrent answering front door.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use rayon::prelude::*;

use gdp_core::Privilege;

use crate::error::ServeError;
use crate::query::{Query, SubsetQuery, TypedAnswer};
use crate::store::ShardedStoreHandle;
use crate::Result;

/// Memoization counters, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered straight from the memo table.
    pub hits: u64,
    /// Requests that computed a fresh answer.
    pub misses: u64,
    /// Entries displaced to admit a newer key once the table was full.
    pub evictions: u64,
    /// Distinct memoized queries currently resident.
    pub entries: usize,
    /// The configured upper bound on resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of requests answered from the memo table, in `[0, 1]`
    /// (`0.0` before any request).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The memo key is variant-aware: two queries of different kinds (or
/// the same kind with different parameters) at the same
/// `(dataset, epoch, level)` are distinct entries. The third component
/// is the release's manifest `content_digest` (0 for pre-digest v1
/// artifacts): a `(dataset, epoch)` that is retired and later
/// re-registered with different bytes — retention GC followed by a
/// republish, a `merge_dir` hot-reload — can never be served from the
/// old release's memo entries, because the new artifact's digest keys
/// a disjoint part of the table. Stale entries age out through the
/// normal CLOCK sweep (or immediately via
/// [`AnswerService::invalidate_release`]).
type CacheKey = (String, u64, u64, usize, Query);

/// One resident memo entry in the clock ring.
#[derive(Debug)]
struct Slot {
    key: Arc<CacheKey>,
    value: TypedAnswer,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// sweeps past; a slot is displaced only when the hand finds it
    /// unreferenced.
    referenced: bool,
}

/// A capacity-bounded memo table with CLOCK (second-chance) eviction.
///
/// The ring grows to `capacity` slots and then recycles them: the hand
/// sweeps from its last position, giving every recently-hit entry one
/// more round before displacement. Keys are `Arc`-shared between the
/// ring and the index so each entry stores its key once.
#[derive(Debug)]
struct ClockCache {
    capacity: usize,
    slots: Vec<Slot>,
    index: HashMap<Arc<CacheKey>, usize>,
    hand: usize,
}

impl ClockCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            slots: Vec::new(),
            index: HashMap::new(),
            hand: 0,
        }
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn get(&mut self, key: &CacheKey) -> Option<TypedAnswer> {
        let &pos = self.index.get(key)?;
        let slot = self.slots.get_mut(pos)?;
        slot.referenced = true;
        Some(slot.value.clone())
    }

    /// Inserts `key → value`, displacing one unreferenced entry when the
    /// ring is full. Returns the number of evictions performed (0 or 1).
    fn insert(&mut self, key: CacheKey, value: TypedAnswer) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        if let Some(&pos) = self.index.get(&key) {
            if let Some(slot) = self.slots.get_mut(pos) {
                slot.value = value;
                slot.referenced = true;
            }
            return 0;
        }
        let key = Arc::new(key);
        if self.slots.len() < self.capacity {
            self.index.insert(Arc::clone(&key), self.slots.len());
            self.slots.push(Slot {
                key,
                value,
                referenced: false,
            });
            return 0;
        }
        // Second-chance sweep: clear reference bits until an
        // unreferenced victim turns up. Terminates within two laps — the
        // first lap clears every bit in the worst case.
        loop {
            let pos = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let Some(slot) = self.slots.get_mut(pos) else {
                return 0;
            };
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            self.index.remove(&slot.key);
            self.index.insert(Arc::clone(&key), pos);
            slot.key = key;
            slot.value = value;
            slot.referenced = false;
            return 1;
        }
    }

    /// Drops every resident entry; returns how many were dropped.
    fn flush(&mut self) -> usize {
        let dropped = self.slots.len();
        self.slots.clear();
        self.index.clear();
        self.hand = 0;
        dropped
    }

    /// Drops every entry memoized for `(dataset, epoch)` — any digest;
    /// returns how many were dropped. Rebuilds the ring compactly, so
    /// the hand restarts; correctness never depends on hand position.
    fn remove_release(&mut self, dataset: &str, epoch: u64) -> usize {
        let old = std::mem::take(&mut self.slots);
        self.index.clear();
        self.hand = 0;
        let before = old.len();
        for slot in old {
            if slot.key.0 == dataset && slot.key.1 == epoch {
                continue;
            }
            self.index.insert(Arc::clone(&slot.key), self.slots.len());
            self.slots.push(slot);
        }
        before - self.slots.len()
    }
}

/// Answers typed queries from a sharded release store under the
/// paper's graded-privilege model — the serving path a heavy-traffic
/// deployment runs.
///
/// Three properties define the service:
///
/// * **Every request is privilege-checked.** The artifact's monotone
///   [`AccessPolicy`](gdp_core::AccessPolicy) is enforced before the
///   query variant is even looked at; a reader cleared for level `p`
///   can answer from levels `p..` and nothing finer — for every
///   [`Query`] variant alike — exactly the paper's `I_{L,i}`-per-
///   audience mapping.
/// * **Batched workloads fan out over rayon, readers over threads.**
///   Answering is RNG-free pure post-processing, so batch output is
///   identical to a sequential loop at any thread count (the
///   degenerate case of the `docs/determinism.md` convention: no
///   per-task randomness at all). [`AnswerService::answer`] takes
///   `&self`, and the store behind it is sharded with one `RwLock` per
///   shard, so any number of OS threads answer concurrently while a
///   republisher inserts next week's artifact.
/// * **Repeated queries are memoized, under a hard memory bound.**
///   Post-processing invariance means re-answering a released value
///   costs no privacy budget, so caching is always *sound*; memory is
///   the only constraint, and the memo table is capacity-bounded with
///   CLOCK (second-chance) eviction — a hostile or fully-unique
///   workload displaces cold entries instead of growing the table
///   without limit, and correctness never depends on the cache (every
///   miss just recomputes the lookup). Evictions are counted in
///   [`CacheStats`]. The memo key is `(dataset, epoch, level, query)`
///   with the full typed query, so variants never collide; histogram
///   answers are `Arc`s, so a cached histogram costs one pointer, not
///   one copy of the bins.
#[derive(Debug)]
pub struct AnswerService {
    store: ShardedStoreHandle,
    cache: Mutex<ClockCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AnswerService {
    /// Default upper bound on resident memo entries; beyond this the
    /// clock hand starts displacing unreferenced entries, bounding
    /// memory on workloads of mostly-unique queries.
    pub const CACHE_CAPACITY: usize = 1 << 20;

    /// Wraps a store (or an existing [`ShardedStoreHandle`] — services
    /// sharing a handle share one registry) with an empty memo table of
    /// the default [`AnswerService::CACHE_CAPACITY`].
    pub fn new(store: impl Into<ShardedStoreHandle>) -> Self {
        Self::with_cache_capacity(store, Self::CACHE_CAPACITY)
    }

    /// Like [`AnswerService::new`] with an explicit memo-table bound.
    /// A capacity of `0` disables memoization entirely (every request
    /// recomputes; still correct).
    pub fn with_cache_capacity(store: impl Into<ShardedStoreHandle>, capacity: usize) -> Self {
        Self {
            store: store.into(),
            cache: Mutex::new(ClockCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The memo table, immune to lock poisoning: a panicking thread
    /// elsewhere never wedges the cache, because entries are only ever
    /// whole key→value pairs (a torn write cannot be observed).
    fn cache(&self) -> MutexGuard<'_, ClockCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The underlying store handle (clone it to share the registry with
    /// other services or writer threads).
    pub fn store(&self) -> &ShardedStoreHandle {
        &self.store
    }

    /// Answers one typed query from `(dataset, epoch)` at `level`,
    /// enforcing `privilege` — the general entry point every variant
    /// routes through.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownRelease`] for an unregistered key.
    /// * [`ServeError::Core`] with
    ///   [`CoreError::AccessDenied`](gdp_core::CoreError::AccessDenied)
    ///   when `level` is finer than `privilege` allows, or
    ///   [`CoreError::LevelOutOfRange`](gdp_core::CoreError::LevelOutOfRange)
    ///   for unknown levels — access is checked **before** the query is
    ///   looked at.
    /// * The variant's own errors
    ///   ([`IndexedRelease::answer`](crate::IndexedRelease::answer)).
    pub fn answer_typed(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
        query: &Query,
    ) -> Result<TypedAnswer> {
        let indexed = self.gated(dataset, epoch, privilege, level)?;
        self.answer_resolved(&indexed, dataset, epoch, level, query.clone())
    }

    /// Resolves `(dataset, epoch)` and enforces `privilege` — the one
    /// store lookup and policy check every request (or whole batch)
    /// pays exactly once.
    fn gated(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
    ) -> Result<std::sync::Arc<crate::IndexedRelease>> {
        let indexed = self.store.get(dataset, epoch)?;
        indexed
            .policy()
            .check(privilege, level)
            .map_err(ServeError::Core)?;
        Ok(indexed)
    }

    /// Memoized dispatch against an already-resolved, already-gated
    /// release. Takes the query by value: it becomes the cache key's
    /// tail, so the whole path costs exactly one query clone (paid by
    /// the borrowing callers), never two.
    fn answer_resolved(
        &self,
        indexed: &crate::IndexedRelease,
        dataset: &str,
        epoch: u64,
        level: usize,
        query: Query,
    ) -> Result<TypedAnswer> {
        // Key on the release's content digest as well as its store key:
        // if this (dataset, epoch) was retired and re-registered with
        // different bytes, the old release's memo entries are
        // unreachable rather than stale.
        let digest = indexed.artifact().manifest().content_digest.unwrap_or(0);
        let key: CacheKey = (dataset.to_string(), epoch, digest, level, query);
        if let Some(value) = self.cache().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(value);
        }
        let value = indexed.answer(level, &key.4)?;
        self.misses.fetch_add(1, Ordering::Relaxed);
        let evicted = self.cache().insert(key, value.clone());
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(value)
    }

    /// Answers a batch of typed queries against one
    /// `(dataset, epoch, level)` under one privilege, fanning out over
    /// rayon. The privilege is checked once up front so a denied
    /// workload is refused as a whole, before any answer is computed.
    ///
    /// # Errors
    ///
    /// Same as [`AnswerService::answer_typed`]; for malformed queries,
    /// which failing query's error surfaces is unspecified.
    pub fn answer_typed_batch(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
        queries: &[Query],
    ) -> Result<Vec<TypedAnswer>> {
        let indexed = self.gated(dataset, epoch, privilege, level)?;
        queries
            .par_iter()
            .map(|query| self.answer_resolved(&indexed, dataset, epoch, level, query.clone()))
            .collect()
    }

    /// Answers one subset-count query — the scalar shorthand for
    /// [`AnswerService::answer_typed`] with
    /// [`Query::SubsetCount`].
    ///
    /// # Errors
    ///
    /// Same as [`AnswerService::answer_typed`].
    pub fn answer(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
        query: &SubsetQuery,
    ) -> Result<f64> {
        let indexed = self.gated(dataset, epoch, privilege, level)?;
        let answer = self.answer_resolved(
            &indexed,
            dataset,
            epoch,
            level,
            Query::SubsetCount(query.clone()),
        )?;
        expect_scalar(answer)
    }

    /// Answers a batch of subset-count queries against one
    /// `(dataset, epoch, level)` under one privilege, fanning out over
    /// rayon. The privilege is checked once up front so a denied
    /// workload is refused as a whole, before any answer is computed.
    ///
    /// # Errors
    ///
    /// Same as [`AnswerService::answer`]; for malformed subsets, which
    /// failing query's error surfaces is unspecified.
    pub fn answer_batch(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
        level: usize,
        queries: &[SubsetQuery],
    ) -> Result<Vec<f64>> {
        let indexed = self.gated(dataset, epoch, privilege, level)?;
        queries
            .par_iter()
            .map(|query| {
                self.answer_resolved(
                    &indexed,
                    dataset,
                    epoch,
                    level,
                    Query::SubsetCount(query.clone()),
                )
                .and_then(expect_scalar)
            })
            .collect()
    }

    /// The finest level `privilege` may read from `(dataset, epoch)`,
    /// or `None` when the privilege is coarser than the whole
    /// hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownRelease`] for an unregistered key.
    pub fn finest_allowed(
        &self,
        dataset: &str,
        epoch: u64,
        privilege: Privilege,
    ) -> Result<Option<usize>> {
        let indexed = self.store.get(dataset, epoch)?;
        let mut range = indexed.policy().accessible_levels(privilege);
        Ok(range.next())
    }

    /// Drops every memo entry for `(dataset, epoch)`, any content
    /// digest — the explicit companion to the digest-keyed protection:
    /// call it after retiring or replacing a release
    /// ([`ReleaseStore::merge_dir`](crate::ReleaseStore::merge_dir),
    /// retention GC) to reclaim the table space immediately instead of
    /// letting the unreachable entries age out through the CLOCK
    /// sweep. Returns how many entries were dropped.
    pub fn invalidate_release(&self, dataset: &str, epoch: u64) -> usize {
        self.cache().remove_release(dataset, epoch)
    }

    /// Drops every memo entry. Returns how many were dropped. Hit/miss
    /// counters are not reset — they count requests, not residency.
    pub fn flush_cache(&self) -> usize {
        self.cache().flush()
    }

    /// Current memoization counters.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.cache();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: cache.len(),
            capacity: cache.capacity,
        }
    }
}

/// A subset count is a scalar by construction; anything else is a
/// serving-layer bug, reported as a typed error instead of a panic so
/// it can never kill a worker thread.
fn expect_scalar(answer: TypedAnswer) -> Result<f64> {
    answer
        .scalar()
        .ok_or_else(|| ServeError::Internal("a subset count resolved to a non-scalar answer".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexedRelease, ReleaseStore};
    use gdp_core::{
        CoreError, DisclosureConfig, MultiLevelDiscloser, Query as CoreQuery,
        ReleaseArtifact, SpecializationConfig, Specializer,
    };
    use gdp_datagen::{DblpConfig, DblpGenerator};
    use gdp_graph::Side;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn service() -> AnswerService {
        service_with_capacity(AnswerService::CACHE_CAPACITY)
    }

    fn service_with_capacity(capacity: usize) -> AnswerService {
        let mut rng = StdRng::seed_from_u64(90);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(3).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.9, 1e-6)
                .unwrap()
                .with_queries(vec![
                    CoreQuery::PerGroupCounts,
                    CoreQuery::LeftDegreeHistogram { max_degree: 12 },
                ]),
        )
        .disclose(&graph, &hierarchy, &mut rng)
        .unwrap();
        let artifact = ReleaseArtifact::seal("dblp", 4, hierarchy, release).unwrap();
        let store = ReleaseStore::new();
        store.insert(IndexedRelease::new(artifact).unwrap()).unwrap();
        AnswerService::with_cache_capacity(store, capacity)
    }

    fn query(nodes: &[u32]) -> SubsetQuery {
        SubsetQuery {
            side: Side::Left,
            nodes: nodes.to_vec(),
        }
    }

    #[test]
    fn privilege_gates_every_level_for_every_variant() {
        let service = service();
        let variants = [
            Query::SubsetCount(query(&[0, 1, 2])),
            Query::GroupMass {
                side: Side::Left,
                group: 0,
            },
            Query::DegreeHistogram { side: Side::Left },
            Query::SideTotal { side: Side::Right },
        ];
        let levels = service.store().get("dblp", 4).unwrap().level_count();
        for finest in 0..levels {
            let privilege = Privilege::new(finest);
            for level in 0..levels {
                for q in &variants {
                    let got = service.answer_typed("dblp", 4, privilege, level, q);
                    if level >= finest {
                        assert!(
                            got.is_ok(),
                            "privilege {finest} refused level {level} {}",
                            q.name()
                        );
                    } else {
                        assert!(
                            matches!(
                                got.unwrap_err(),
                                ServeError::Core(CoreError::AccessDenied { .. })
                            ),
                            "privilege {finest} was served level {level} {}",
                            q.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_keys_and_levels_are_typed() {
        let service = service();
        let q = query(&[0]);
        assert!(matches!(
            service.answer("dblp", 99, Privilege::full(), 0, &q).unwrap_err(),
            ServeError::UnknownRelease { epoch: 99, .. }
        ));
        assert!(matches!(
            service.answer("movies", 4, Privilege::full(), 0, &q).unwrap_err(),
            ServeError::UnknownRelease { .. }
        ));
        assert!(matches!(
            service.answer("dblp", 4, Privilege::full(), 99, &q).unwrap_err(),
            ServeError::Core(CoreError::LevelOutOfRange { level: 99, .. })
        ));
    }

    #[test]
    fn memoization_hits_on_repeats_without_changing_answers() {
        let service = service();
        let q = query(&[3, 1, 7]);
        let first = service.answer("dblp", 4, Privilege::full(), 1, &q).unwrap();
        let again = service.answer("dblp", 4, Privilege::full(), 1, &q).unwrap();
        assert_eq!(first.to_bits(), again.to_bits());
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        // A different level is a different memo entry.
        service.answer("dblp", 4, Privilege::full(), 2, &q).unwrap();
        assert_eq!(service.cache_stats().entries, 2);
    }

    #[test]
    fn cache_keys_are_variant_aware() {
        let service = service();
        // Four different variants at the same (dataset, epoch, level):
        // four distinct entries, no collisions.
        let variants = [
            Query::SubsetCount(query(&[0])),
            Query::GroupMass {
                side: Side::Left,
                group: 0,
            },
            Query::DegreeHistogram { side: Side::Left },
            Query::SideTotal { side: Side::Left },
        ];
        for q in &variants {
            service.answer_typed("dblp", 4, Privilege::full(), 1, q).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 0);
        // Replay: all hits, and each variant returns its own bits.
        for q in &variants {
            let a = service.answer_typed("dblp", 4, Privilege::full(), 1, q).unwrap();
            let b = service.store().get("dblp", 4).unwrap().answer(1, q).unwrap();
            assert_eq!(a, b, "{} cached answer drifted", q.name());
        }
        assert_eq!(service.cache_stats().hits, 4);
        // Same variant kind, different parameter: a fresh entry.
        service
            .answer_typed(
                "dblp",
                4,
                Privilege::full(),
                1,
                &Query::GroupMass {
                    side: Side::Left,
                    group: 1,
                },
            )
            .unwrap();
        assert_eq!(service.cache_stats().entries, 5);
    }

    #[test]
    fn cache_is_bounded_and_counts_evictions() {
        let service = service_with_capacity(3);
        let queries: Vec<Query> = (0..6u32)
            .map(|k| Query::SubsetCount(query(&[k])))
            .collect();
        for q in &queries {
            service.answer_typed("dblp", 4, Privilege::full(), 2, q).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.capacity, 3);
        assert_eq!(stats.entries, 3, "the table never outgrows its bound");
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.evictions, 3, "each admission past the bound displaces one entry");
        // Evicted or not, every answer stays bit-identical to the index.
        let indexed = service.store().get("dblp", 4).unwrap();
        for q in &queries {
            let served = service
                .answer_typed("dblp", 4, Privilege::full(), 2, q)
                .unwrap();
            assert_eq!(served, indexed.answer(2, q).unwrap());
        }
    }

    #[test]
    fn clock_eviction_gives_hot_entries_a_second_chance() {
        let service = service_with_capacity(2);
        let hot = Query::SideTotal { side: Side::Left };
        let cold = |k: u32| Query::SubsetCount(query(&[k]));
        service.answer_typed("dblp", 4, Privilege::full(), 2, &hot).unwrap();
        service.answer_typed("dblp", 4, Privilege::full(), 2, &cold(0)).unwrap();
        // Keep the hot entry referenced, then push a stream of cold
        // inserts through the full table: the hand must displace the
        // unreferenced cold slots and keep the hot one resident.
        for group in 1..5 {
            service.answer_typed("dblp", 4, Privilege::full(), 2, &hot).unwrap();
            service
                .answer_typed("dblp", 4, Privilege::full(), 2, &cold(group))
                .unwrap();
        }
        let stats = service.cache_stats();
        let hits_before = stats.hits;
        service.answer_typed("dblp", 4, Privilege::full(), 2, &hot).unwrap();
        assert_eq!(
            service.cache_stats().hits,
            hits_before + 1,
            "the repeatedly-referenced entry survived eviction pressure"
        );
        assert!(stats.evictions > 0);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn zero_capacity_disables_memoization_but_stays_correct() {
        let service = service_with_capacity(0);
        let q = query(&[3, 1, 7]);
        let first = service.answer("dblp", 4, Privilege::full(), 1, &q).unwrap();
        let again = service.answer("dblp", 4, Privilege::full(), 1, &q).unwrap();
        assert_eq!(first.to_bits(), again.to_bits());
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn batch_is_checked_before_answering_and_matches_singles() {
        let service = service();
        let queries: Vec<SubsetQuery> =
            (0..20u32).map(|k| query(&(0..=k).collect::<Vec<_>>())).collect();
        // Denied as a whole…
        assert!(matches!(
            service
                .answer_batch("dblp", 4, Privilege::new(2), 0, &queries)
                .unwrap_err(),
            ServeError::Core(CoreError::AccessDenied { .. })
        ));
        assert_eq!(service.cache_stats().misses, 0, "no answer was computed");
        // …and allowed batches equal the sequential loop.
        let batch = service
            .answer_batch("dblp", 4, Privilege::new(2), 2, &queries)
            .unwrap();
        for (q, &got) in queries.iter().zip(&batch) {
            let single = service.answer("dblp", 4, Privilege::new(2), 2, q).unwrap();
            assert_eq!(single.to_bits(), got.to_bits());
        }
    }

    #[test]
    fn typed_batch_fans_out_all_variants() {
        let service = service();
        let queries: Vec<Query> = (0..24u32)
            .map(|k| match k % 4 {
                0 => Query::SubsetCount(query(&(0..=k).collect::<Vec<_>>())),
                1 => Query::GroupMass {
                    side: Side::Right,
                    group: k % 2,
                },
                2 => Query::DegreeHistogram { side: Side::Left },
                _ => Query::SideTotal { side: Side::Left },
            })
            .collect();
        // Denied as a whole before any variant is touched…
        assert!(matches!(
            service
                .answer_typed_batch("dblp", 4, Privilege::new(2), 1, &queries)
                .unwrap_err(),
            ServeError::Core(CoreError::AccessDenied { .. })
        ));
        assert_eq!(service.cache_stats().misses, 0);
        // …and allowed batches equal the sequential loop.
        let batch = service
            .answer_typed_batch("dblp", 4, Privilege::new(2), 2, &queries)
            .unwrap();
        for (q, got) in queries.iter().zip(&batch) {
            let single = service
                .answer_typed("dblp", 4, Privilege::new(2), 2, q)
                .unwrap();
            assert_eq!(&single, got, "{} batch answer drifted", q.name());
        }
    }

    /// Seals a ("dblp", 4) artifact whose noisy values depend on
    /// `noise_seed` — different seeds give different content digests.
    fn artifact_with_noise(noise_seed: u64) -> ReleaseArtifact {
        let mut rng = StdRng::seed_from_u64(90);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(3).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.9, 1e-6)
                .unwrap()
                .with_queries(vec![CoreQuery::PerGroupCounts]),
        )
        .disclose(&graph, &hierarchy, &mut StdRng::seed_from_u64(noise_seed))
        .unwrap();
        ReleaseArtifact::seal("dblp", 4, hierarchy, release).unwrap()
    }

    #[test]
    fn reload_replacing_a_release_never_serves_stale_cached_answers() {
        // Regression: the memo key used to be (dataset, epoch, level,
        // query) with no notion of release identity, so a release
        // retired by `merge_dir` and re-registered with different bytes
        // kept answering from the *old* release's cache entries.
        let dir = std::env::temp_dir().join("gdp_service_reload_invalidation");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let old = artifact_with_noise(1);
        let path = dir.join(ReleaseArtifact::canonical_file_name("dblp", 4));
        old.save_atomic(&path).unwrap();
        let store = ReleaseStore::open_dir(&dir).unwrap();
        let service = AnswerService::new(store);
        let q = Query::GroupMass {
            side: Side::Left,
            group: 0,
        };
        let before = service
            .answer_typed("dblp", 4, Privilege::full(), 1, &q)
            .unwrap();
        // Warm the cache.
        service.answer_typed("dblp", 4, Privilege::full(), 1, &q).unwrap();
        assert_eq!(service.cache_stats().hits, 1);

        // Operator retires the file and republishes the epoch with
        // fresh noise; two merge_dir passes make it a real
        // retire-then-register reload.
        std::fs::remove_file(&path).unwrap();
        service.store().merge_dir(&dir).unwrap();
        let new = artifact_with_noise(2);
        assert_ne!(
            old.manifest().content_digest,
            new.manifest().content_digest,
            "republish really changed the bytes"
        );
        new.save_atomic(&path).unwrap();
        service.store().merge_dir(&dir).unwrap();

        let after = service
            .answer_typed("dblp", 4, Privilege::full(), 1, &q)
            .unwrap();
        let expected = service.store().get("dblp", 4).unwrap().answer(1, &q).unwrap();
        assert_eq!(after, expected, "answer must come from the new release");
        assert_ne!(before, after, "stale cache entry was served after reload");
        // And repeats hit the *new* entry.
        let hits = service.cache_stats().hits;
        service.answer_typed("dblp", 4, Privilege::full(), 1, &q).unwrap();
        assert_eq!(service.cache_stats().hits, hits + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalidate_release_and_flush_drop_entries() {
        let service = service();
        let qs: Vec<Query> = (0..4u32)
            .map(|k| Query::SubsetCount(query(&[k])))
            .collect();
        for q in &qs {
            service.answer_typed("dblp", 4, Privilege::full(), 1, q).unwrap();
        }
        assert_eq!(service.cache_stats().entries, 4);
        // A different (dataset, epoch) is untouched by invalidation.
        assert_eq!(service.invalidate_release("dblp", 5), 0);
        assert_eq!(service.cache_stats().entries, 4);
        assert_eq!(service.invalidate_release("dblp", 4), 4);
        assert_eq!(service.cache_stats().entries, 0);
        // Entries recompute (a miss), not resurrect.
        service.answer_typed("dblp", 4, Privilege::full(), 1, &qs[0]).unwrap();
        assert_eq!(service.cache_stats().entries, 1);
        assert_eq!(service.flush_cache(), 1);
        assert_eq!(service.cache_stats().entries, 0);
        assert_eq!(service.flush_cache(), 0);
    }

    #[test]
    fn finest_allowed_follows_policy() {
        let service = service();
        assert_eq!(
            service.finest_allowed("dblp", 4, Privilege::full()).unwrap(),
            Some(0)
        );
        assert_eq!(
            service.finest_allowed("dblp", 4, Privilege::new(3)).unwrap(),
            Some(3)
        );
        assert_eq!(
            service.finest_allowed("dblp", 4, Privilege::new(99)).unwrap(),
            None
        );
        assert!(service.finest_allowed("dblp", 9, Privilege::full()).is_err());
    }
}
