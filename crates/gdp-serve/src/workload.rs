//! Plain-text subset-query workload files — the format `gdp answer`
//! consumes.
//!
//! One query per line: a side tag (`L` or `R`) followed by the queried
//! node indices, whitespace-separated; `#`-prefixed comment lines and
//! blank lines are ignored, mirroring the `gdp_graph::io` edge-list
//! conventions:
//!
//! ```text
//! # side node node node ...
//! L 0 1 2
//! R 5 7
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use gdp_graph::Side;

use crate::error::ServeError;
use crate::service::SubsetQuery;
use crate::Result;

/// Writes a workload as a text query file.
///
/// # Errors
///
/// Propagates IO failures from the writer.
pub fn write_query_file<W: Write>(queries: &[SubsetQuery], mut writer: W) -> Result<()> {
    for query in queries {
        let tag = match query.side {
            Side::Left => "L",
            Side::Right => "R",
        };
        write!(writer, "{tag}")?;
        for node in &query.nodes {
            write!(writer, " {node}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads a workload from a text query file.
///
/// Parsing is syntactic only: node ranges and duplicates are the
/// answering path's to enforce (with its typed errors), so a workload
/// file can be written before the artifact it will be asked against
/// exists.
///
/// # Errors
///
/// * [`ServeError::Workload`] for an unknown side tag, a non-numeric
///   node, or a query with no nodes.
/// * IO failures from the reader (as [`ServeError::Core`]).
pub fn read_query_file<R: Read>(reader: R) -> Result<Vec<SubsetQuery>> {
    let reader = BufReader::new(reader);
    let mut queries = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let side = match parts.next() {
            Some("L") => Side::Left,
            Some("R") => Side::Right,
            Some(other) => {
                return Err(ServeError::Workload {
                    line: line_no,
                    message: format!("unknown side tag `{other}` (expected L or R)"),
                })
            }
            None => unreachable!("trimmed line is non-empty"),
        };
        let nodes: Vec<u32> = parts
            .map(|tok| {
                tok.parse::<u32>().map_err(|e| ServeError::Workload {
                    line: line_no,
                    message: format!("bad node index `{tok}`: {e}"),
                })
            })
            .collect::<Result<_>>()?;
        if nodes.is_empty() {
            return Err(ServeError::Workload {
                line: line_no,
                message: "query lists no nodes".to_string(),
            });
        }
        queries.push(SubsetQuery { side, nodes });
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let queries = vec![
            SubsetQuery {
                side: Side::Left,
                nodes: vec![0, 1, 2],
            },
            SubsetQuery {
                side: Side::Right,
                nodes: vec![9],
            },
        ];
        let mut buf = Vec::new();
        write_query_file(&queries, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), "L 0 1 2\nR 9\n");
        let back = read_query_file(buf.as_slice()).unwrap();
        assert_eq!(queries, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# workload\n\nL 3 4\n# more\nR 1\n";
        let queries = read_query_file(text.as_bytes()).unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].nodes, vec![3, 4]);
    }

    #[test]
    fn malformed_lines_name_the_line() {
        for (bad, needle) in [
            ("X 1 2\n", "side tag"),
            ("L 1 banana\n", "banana"),
            ("L\n", "no nodes"),
        ] {
            let err = read_query_file(bad.as_bytes()).unwrap_err();
            match err {
                ServeError::Workload { line, message } => {
                    assert_eq!(line, 1, "input {bad:?}");
                    assert!(message.contains(needle), "{message}");
                }
                other => panic!("expected workload error for {bad:?}, got {other}"),
            }
        }
    }
}
