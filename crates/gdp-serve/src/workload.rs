//! Plain-text typed-query workload files — the format `gdp answer`
//! consumes.
//!
//! One query per line; `#`-prefixed comment lines and blank lines are
//! ignored, mirroring the `gdp_graph::io` edge-list conventions. A
//! line starting with a side tag (`L` or `R`) is a subset-count query
//! over the listed node indices (a bare tag is the **empty subset**,
//! which estimates `0.0`); the other [`Query`] variants carry a
//! keyword tag:
//!
//! ```text
//! # subset counts: side node node node ...
//! L 0 1 2
//! R 5 7
//! L
//! # one group's raw noisy mass: mass side group
//! mass L 3
//! # the released degree histogram: hist side
//! hist L
//! # the whole-side total: total side
//! total R
//! ```
//!
//! The format round-trips: [`write_query_file`] emits exactly the
//! lines [`read_query_file`] parses, for every variant and every edge
//! case (empty subsets, `u32::MAX` indices, with or without a final
//! trailing newline).

use std::io::{BufRead, BufReader, Read, Write};

use gdp_graph::Side;

use crate::error::ServeError;
use crate::query::{Query, SubsetQuery};
use crate::Result;

fn side_tag(side: Side) -> &'static str {
    match side {
        Side::Left => "L",
        Side::Right => "R",
    }
}

/// Writes a workload as a text query file.
///
/// # Errors
///
/// Propagates IO failures from the writer.
pub fn write_query_file<W: Write>(queries: &[Query], mut writer: W) -> Result<()> {
    for query in queries {
        match query {
            Query::SubsetCount(SubsetQuery { side, nodes }) => {
                write!(writer, "{}", side_tag(*side))?;
                for node in nodes {
                    write!(writer, " {node}")?;
                }
                writeln!(writer)?;
            }
            Query::GroupMass { side, group } => {
                writeln!(writer, "mass {} {group}", side_tag(*side))?;
            }
            Query::DegreeHistogram { side } => {
                writeln!(writer, "hist {}", side_tag(*side))?;
            }
            Query::SideTotal { side } => {
                writeln!(writer, "total {}", side_tag(*side))?;
            }
        }
    }
    Ok(())
}

fn parse_side(token: Option<&str>, line: usize) -> Result<Side> {
    match token {
        Some("L") => Ok(Side::Left),
        Some("R") => Ok(Side::Right),
        Some(other) => Err(ServeError::Workload {
            line,
            message: format!("unknown side tag `{other}` (expected L or R)"),
        }),
        None => Err(ServeError::Workload {
            line,
            message: "missing side tag (expected L or R)".to_string(),
        }),
    }
}

fn parse_u32(token: &str, line: usize, what: &str) -> Result<u32> {
    token.parse::<u32>().map_err(|e| ServeError::Workload {
        line,
        message: format!("bad {what} `{token}`: {e}"),
    })
}

fn reject_trailing(mut parts: std::str::SplitWhitespace<'_>, line: usize) -> Result<()> {
    match parts.next() {
        None => Ok(()),
        Some(extra) => Err(ServeError::Workload {
            line,
            message: format!("unexpected trailing token `{extra}`"),
        }),
    }
}

/// Reads a workload from a text query file.
///
/// Parsing is syntactic only: node/group ranges, duplicates and
/// whether a statistic was released are the answering path's to
/// enforce (with its typed errors), so a workload file can be written
/// before the artifact it will be asked against exists.
///
/// # Errors
///
/// * [`ServeError::Workload`] for an unknown tag, a non-numeric index,
///   or a malformed variant line (wrong arity), naming the 1-based
///   line.
/// * IO failures from the reader (as [`ServeError::Core`]).
pub fn read_query_file<R: Read>(reader: R) -> Result<Vec<Query>> {
    let reader = BufReader::new(reader);
    let mut queries = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let Some(tag) = parts.next() else {
            // Unreachable (the line was non-empty after trimming), but a
            // skip beats a panic in a serving-path parser.
            continue;
        };
        let query = match tag {
            "L" | "R" => {
                let side = parse_side(Some(tag), line_no)?;
                let nodes: Vec<u32> = parts
                    .map(|tok| parse_u32(tok, line_no, "node index"))
                    .collect::<Result<_>>()?;
                Query::SubsetCount(SubsetQuery { side, nodes })
            }
            "mass" => {
                let side = parse_side(parts.next(), line_no)?;
                let group = match parts.next() {
                    Some(tok) => parse_u32(tok, line_no, "group index")?,
                    None => {
                        return Err(ServeError::Workload {
                            line: line_no,
                            message: "mass query lists no group index".to_string(),
                        })
                    }
                };
                reject_trailing(parts, line_no)?;
                Query::GroupMass { side, group }
            }
            "hist" => {
                let side = parse_side(parts.next(), line_no)?;
                reject_trailing(parts, line_no)?;
                Query::DegreeHistogram { side }
            }
            "total" => {
                let side = parse_side(parts.next(), line_no)?;
                reject_trailing(parts, line_no)?;
                Query::SideTotal { side }
            }
            other => {
                return Err(ServeError::Workload {
                    line: line_no,
                    message: format!(
                        "unknown tag `{other}` (expected L, R, mass, hist or total)"
                    ),
                })
            }
        };
        queries.push(query);
    }
    Ok(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subset(side: Side, nodes: &[u32]) -> Query {
        Query::SubsetCount(SubsetQuery {
            side,
            nodes: nodes.to_vec(),
        })
    }

    #[test]
    fn round_trip_every_variant() {
        let queries = vec![
            subset(Side::Left, &[0, 1, 2]),
            subset(Side::Right, &[9]),
            Query::GroupMass {
                side: Side::Left,
                group: 3,
            },
            Query::DegreeHistogram { side: Side::Left },
            Query::SideTotal { side: Side::Right },
        ];
        let mut buf = Vec::new();
        write_query_file(&queries, &mut buf).unwrap();
        assert_eq!(
            String::from_utf8(buf.clone()).unwrap(),
            "L 0 1 2\nR 9\nmass L 3\nhist L\ntotal R\n"
        );
        let back = read_query_file(buf.as_slice()).unwrap();
        assert_eq!(queries, back);
    }

    #[test]
    fn empty_subset_line_round_trips() {
        // A bare side tag is the empty subset — it must write as `L`
        // and read back identically (it used to be rejected, breaking
        // the write→read round trip).
        let queries = vec![subset(Side::Left, &[]), subset(Side::Right, &[])];
        let mut buf = Vec::new();
        write_query_file(&queries, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf.clone()).unwrap(), "L\nR\n");
        assert_eq!(read_query_file(buf.as_slice()).unwrap(), queries);
    }

    #[test]
    fn extreme_indices_round_trip() {
        let queries = vec![
            subset(Side::Left, &[u32::MAX, 0, u32::MAX - 1]),
            Query::GroupMass {
                side: Side::Right,
                group: u32::MAX,
            },
        ];
        let mut buf = Vec::new();
        write_query_file(&queries, &mut buf).unwrap();
        assert_eq!(read_query_file(buf.as_slice()).unwrap(), queries);
        // One past u32::MAX is a parse error naming the line, not a
        // silent wrap.
        let err = read_query_file("L 4294967296\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ServeError::Workload { line: 1, .. }));
    }

    #[test]
    fn missing_trailing_newline_still_parses_last_line() {
        let queries = read_query_file("L 1 2\ntotal R".as_bytes()).unwrap();
        assert_eq!(
            queries,
            vec![
                subset(Side::Left, &[1, 2]),
                Query::SideTotal { side: Side::Right }
            ]
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# workload\n\nL 3 4\n# more\nR 1\nhist L\n";
        let queries = read_query_file(text.as_bytes()).unwrap();
        assert_eq!(queries.len(), 3);
        assert_eq!(queries[0], subset(Side::Left, &[3, 4]));
        assert_eq!(queries[2], Query::DegreeHistogram { side: Side::Left });
    }

    #[test]
    fn malformed_lines_name_the_line() {
        for (bad, needle) in [
            ("X 1 2\n", "unknown tag"),
            ("L 1 banana\n", "banana"),
            ("mass L\n", "no group index"),
            ("mass Q 1\n", "side tag"),
            ("mass L one\n", "one"),
            ("hist\n", "missing side"),
            ("hist L 3\n", "trailing"),
            ("total L extra\n", "trailing"),
            ("total\n", "missing side"),
        ] {
            let err = read_query_file(bad.as_bytes()).unwrap_err();
            match err {
                ServeError::Workload { line, message } => {
                    assert_eq!(line, 1, "input {bad:?}");
                    assert!(message.contains(needle), "{bad:?}: {message}");
                }
                other => panic!("expected workload error for {bad:?}, got {other}"),
            }
        }
        // Errors after valid lines still name their own line.
        let err = read_query_file("L 1\n# ok\nmass L\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ServeError::Workload { line: 3, .. }));
    }
}
