//! **Serving subsystem** for published multi-level releases — the
//! consumer half of the group-DP pipeline as a first-class, scalable
//! component.
//!
//! The paper's long-lived product is the published bundle `{I_{L,i}}`
//! consumed under graded privileges, not the pipeline run that produced
//! it; and because differential privacy is closed under
//! post-processing, anything a server does with a sealed
//! [`ReleaseArtifact`](gdp_core::ReleaseArtifact) — indexing, caching,
//! batching, re-answering the same query a million times — costs zero
//! additional privacy budget. That freedom is what this crate exploits:
//!
//! * [`Query`] / [`TypedAnswer`] — the typed query surface: subset
//!   counts, per-group noisy masses, released degree histograms and
//!   side totals, every variant answered on the indexed path and
//!   pinned **bit-identical** (values and typed-error precedence) to a
//!   core rescan baseline in [`gdp_core::answering`].
//! * [`IndexedRelease`] — a query-optimized view of one artifact:
//!   per-level node→group tables plus per-group noisy mass, raw and
//!   pre-divided by `|g|`, turning a subset-count estimate into an
//!   `O(|S|)` gather (bit-identical to
//!   [`gdp_core::answering::SubsetCountEstimator`], which remains the
//!   equivalence baseline) instead of an `O(groups)` scan behind a
//!   per-query estimator rebuild; histograms are materialized once per
//!   level and served by `Arc` reference.
//! * [`ReleaseStore`] / [`ShardedStoreHandle`] — artifacts keyed by
//!   `(dataset, epoch)` in fixed `hash(dataset) % N` shards with one
//!   `RwLock` each, so concurrent readers never serialize on one
//!   registry lock and a republisher inserts without stopping the
//!   world; [`ReleaseStore::open_dir`] scans a directory of artifact
//!   JSONs and indexes each lazily on first access.
//! * Store **lifecycle** ([`lifecycle`]) — degraded opens that
//!   quarantine damage instead of failing
//!   ([`ReleaseStore::open_dir_report`] → [`OpenReport`]), live
//!   re-scans that pick up freshly published epochs and retire deleted
//!   ones ([`ReleaseStore::merge_dir`]), and retention GC
//!   ([`RetentionPolicy`], [`ReleaseStore::gc`]) that durably deletes
//!   only fully-superseded epochs.
//! * [`AnswerService`] — the front door: enforces
//!   [`AccessPolicy`](gdp_core::AccessPolicy)/[`Privilege`](gdp_core::Privilege)
//!   on **every** request and variant, fans batched workloads out over
//!   rayon (deterministically — answering is RNG-free pure
//!   post-processing, see `docs/determinism.md`), and memoizes
//!   repeated queries under variant-aware keys.
//! * [`workload`] — the plain-text typed-query file format the CLI's
//!   `gdp answer` consumes, following `gdp_graph::io` conventions.
//!
//! ```
//! use gdp_core::{DisclosureConfig, DisclosureSession, Privilege, Query,
//!     SpecializationConfig, Specializer};
//! use gdp_datagen::{DblpConfig, DblpGenerator};
//! use gdp_mechanisms::PrivacyBudget;
//! use gdp_graph::Side;
//! use gdp_serve::{AnswerService, IndexedRelease, ReleaseStore, SubsetQuery};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(11);
//! # let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
//! # let hierarchy = Specializer::new(SpecializationConfig::median(3)?)
//! #     .specialize(&graph, &mut rng)?;
//! // Publisher side: a budget-enforced session seals an artifact…
//! let mut session = DisclosureSession::new(graph, hierarchy, PrivacyBudget::new(1.0, 1e-5)?);
//! let config = DisclosureConfig::count_only(0.5, 1e-6)?
//!     .with_queries(vec![Query::PerGroupCounts]);
//! let artifact = session.publish(&config, "dblp", 1, &mut rng)?;
//!
//! // …serving side: index it, register it, answer under a privilege.
//! let store = ReleaseStore::new();
//! store.insert(IndexedRelease::new(artifact)?)?;
//! let service = AnswerService::new(store);
//! let query = SubsetQuery { side: Side::Left, nodes: vec![0, 1, 2] };
//! let coarse = service.answer("dblp", 1, Privilege::new(2), 2, &query)?;
//! assert!(coarse.is_finite());
//! // Typed variants ride the same privilege-gated path.
//! let total = service.answer_typed(
//!     "dblp", 1, Privilege::new(2), 2,
//!     &gdp_serve::Query::SideTotal { side: Side::Left })?;
//! assert!(total.scalar().unwrap().is_finite());
//! // The same reader may NOT touch a finer level than their clearance.
//! assert!(service.answer("dblp", 1, Privilege::new(2), 0, &query).is_err());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod index;
mod query;
mod service;
mod store;

pub mod kernels;
pub mod lifecycle;
pub mod workload;

pub use error::ServeError;
pub use index::IndexedRelease;
pub use lifecycle::{FileOutcome, GcEviction, GcReport, OpenReport, RetentionPolicy};
pub use query::{Query, SubsetQuery, TypedAnswer};
pub use service::{AnswerService, CacheStats};
pub use store::{ReleaseStore, ShardedStoreHandle};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
