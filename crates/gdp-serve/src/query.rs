//! The typed query surface — every statistic the serving layer answers.
//!
//! The paper's consumer path discloses more than subset counts: degree
//! histograms and per-group noisy masses are first-class published
//! statistics. [`Query`] names each of them as a variant; every variant
//! is answered on the indexed path, pinned **bit-identical** to a
//! core-path rescan baseline in `gdp_core::answering`
//! ([`scan_group_mass`](gdp_core::answering::scan_group_mass),
//! [`scan_side_total`](gdp_core::answering::scan_side_total),
//! [`scan_degree_histogram`](gdp_core::answering::scan_degree_histogram),
//! and [`SubsetCountEstimator`](gdp_core::answering::SubsetCountEstimator)
//! for subset counts) by the conformance proptests in
//! `crates/gdp-serve/tests/conformance.rs`.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use gdp_graph::Side;

/// One subset-count query: "how many associations touch *these* nodes
/// on this side?"
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubsetQuery {
    /// Which side the subset lives on.
    pub side: Side,
    /// The queried node indices (must be in range and duplicate-free;
    /// an empty subset is well-formed and estimates `0.0`).
    pub nodes: Vec<u32>,
}

/// A typed query against one level of one published release — the
/// generalization of [`SubsetQuery`] the answering service dispatches.
///
/// The hierarchy level is part of the request envelope
/// ([`AnswerService::answer_typed`](crate::AnswerService::answer_typed)
/// takes it alongside the privilege), uniform across variants, so
/// privilege gating happens once per request before the variant is
/// looked at.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// The estimated association count incident to a node subset — the
    /// `O(|S|)` gather over premass tables.
    SubsetCount(SubsetQuery),
    /// The **raw noisy incident-association mass** of one group, as
    /// released (not divided by the group size) — the per-group lookup
    /// a consumer uses to read a single neighborhood's disclosure.
    GroupMass {
        /// Which side the group lives on.
        side: Side,
        /// The group index at the queried level.
        group: u32,
    },
    /// The noisy degree histogram released at the level (bins
    /// `0..=max_degree`). Only the left side is released by the
    /// disclosure pipeline; asking for the right side is a typed
    /// refusal
    /// ([`ServeError::StatisticNotReleased`](crate::ServeError::StatisticNotReleased)).
    DegreeHistogram {
        /// Which side's histogram to read.
        side: Side,
    },
    /// The sum of every group's noisy mass on a side — the whole-side
    /// estimate, for consistency checks against released totals.
    SideTotal {
        /// Which side to total.
        side: Side,
    },
}

impl Query {
    /// Stable, human-readable variant name, used by workload files, CLI
    /// output and bench report entries.
    pub fn name(&self) -> &'static str {
        match self {
            Query::SubsetCount(_) => "subset_count",
            Query::GroupMass { .. } => "group_mass",
            Query::DegreeHistogram { .. } => "degree_histogram",
            Query::SideTotal { .. } => "side_total",
        }
    }

    /// The side the query reads.
    pub fn side(&self) -> Side {
        match self {
            Query::SubsetCount(q) => q.side,
            Query::GroupMass { side, .. }
            | Query::DegreeHistogram { side }
            | Query::SideTotal { side } => *side,
        }
    }
}

impl From<SubsetQuery> for Query {
    fn from(q: SubsetQuery) -> Self {
        Query::SubsetCount(q)
    }
}

/// A typed query's answer.
///
/// Histograms are **served by reference**: the index materializes each
/// level's released histogram once ([`Arc`]d), and every answer —
/// cached or fresh — clones the `Arc`, never the bins. Cloning a
/// `TypedAnswer` is therefore always O(1).
#[derive(Debug, Clone, PartialEq)]
pub enum TypedAnswer {
    /// A scalar statistic (subset count, group mass, side total).
    Scalar(f64),
    /// A histogram statistic: noisy bin values `0..=max_degree`.
    Histogram(Arc<[f64]>),
}

impl TypedAnswer {
    /// The scalar value, if this is a scalar answer.
    pub fn scalar(&self) -> Option<f64> {
        match self {
            TypedAnswer::Scalar(v) => Some(*v),
            TypedAnswer::Histogram(_) => None,
        }
    }

    /// The histogram bins, if this is a histogram answer.
    pub fn histogram(&self) -> Option<&[f64]> {
        match self {
            TypedAnswer::Scalar(_) => None,
            TypedAnswer::Histogram(bins) => Some(bins),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sides_and_conversions() {
        let subset = SubsetQuery {
            side: Side::Left,
            nodes: vec![1, 2],
        };
        let q: Query = subset.clone().into();
        assert_eq!(q, Query::SubsetCount(subset));
        assert_eq!(q.name(), "subset_count");
        assert_eq!(q.side(), Side::Left);
        assert_eq!(
            Query::GroupMass {
                side: Side::Right,
                group: 3
            }
            .name(),
            "group_mass"
        );
        assert_eq!(
            Query::DegreeHistogram { side: Side::Left }.side(),
            Side::Left
        );
        assert_eq!(Query::SideTotal { side: Side::Right }.side(), Side::Right);
    }

    #[test]
    fn typed_answer_accessors() {
        let s = TypedAnswer::Scalar(4.5);
        assert_eq!(s.scalar(), Some(4.5));
        assert!(s.histogram().is_none());
        let h = TypedAnswer::Histogram(vec![1.0, 2.0].into());
        assert!(h.scalar().is_none());
        assert_eq!(h.histogram(), Some(&[1.0, 2.0][..]));
        // Cloning a histogram answer shares the bins.
        let h2 = h.clone();
        assert_eq!(h, h2);
    }
}
