//! The artifact registry a deployment keeps as it republishes — fixed
//! shards, `RwLock` per shard, lazy indexing of scanned directories,
//! and the durable lifecycle around it: degraded scans that quarantine
//! damage instead of failing ([`ReleaseStore::open_dir_report`]),
//! live re-scans that pick up and retire epochs
//! ([`ReleaseStore::merge_dir`]), and retention GC
//! ([`ReleaseStore::gc`]).

use std::collections::BTreeMap;
use std::collections::HashSet;
use std::fs::File;
use std::io::BufReader;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};

use gdp_core::artifact::ArtifactPayload;
use gdp_core::codec;
use gdp_core::{
    ArtifactFormat, ReleaseArtifact, ARTIFACT_SCHEMA_VERSION, MIN_ARTIFACT_SCHEMA_VERSION,
};
use gdp_graph::io as graph_io;

use crate::error::ServeError;
use crate::index::IndexedRelease;
use crate::lifecycle::{FileOutcome, GcEviction, GcReport, OpenReport, RetentionPolicy, QUARANTINE_DIR};
use crate::Result;

/// Number of fixed shards. A power of two, sized so that even a
/// many-dataset deployment sees almost no writer/writer contention
/// while the per-shard maps stay small enough to walk for listings.
const SHARD_COUNT: usize = 16;

/// Deterministic FNV-1a over the dataset name — the shard router.
/// (Not `std`'s `DefaultHasher`, whose keys are randomized per
/// process: shard assignment must be a pure function of the dataset so
/// tests and debugging tools can reason about placement.)
fn shard_of(dataset: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in dataset.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// One registered release: either still the sealed artifact a directory
/// scan loaded (validated, not yet table-built), or the fully indexed
/// form. Promotion happens on first access, under the shard's write
/// lock.
#[derive(Debug)]
enum Entry {
    Sealed(Box<ReleaseArtifact>),
    Indexed(Arc<IndexedRelease>),
}

/// A registered release plus where it came from. `source` is the file
/// a directory scan loaded it from (or a [`ReleaseStore::save`] wrote
/// it to); `None` for programmatic inserts. The lifecycle operations
/// key off it: [`ReleaseStore::merge_dir`] retires entries whose
/// source vanished, [`ReleaseStore::gc`] deletes sources when
/// evicting, and quarantining a source detaches it so the in-memory
/// release keeps serving.
#[derive(Debug)]
struct Registered {
    entry: Entry,
    source: Option<PathBuf>,
}

type Shard = BTreeMap<(String, u64), Registered>;

/// Indexed release artifacts keyed by `(dataset, epoch)`, sharded
/// `hash(dataset) % N` with one `RwLock` per shard.
///
/// A deployment that republishes weekly accumulates one artifact per
/// epoch per dataset; the store is the lookup structure the
/// [`AnswerService`](crate::AnswerService) routes requests through.
/// All operations take `&self`: readers of different datasets touch
/// different shards entirely, readers of the same dataset share that
/// shard's read lock, and a writer blocks only its own shard — the
/// read-mostly serving path never serializes on a single registry
/// lock. Keys are unique — published artifacts are immutable, so
/// inserting a second artifact under an existing `(dataset, epoch)` is
/// rejected with [`ServeError::DuplicateRelease`] instead of silently
/// replacing answers consumers may already have seen.
///
/// ```
/// # use gdp_core::{DisclosureConfig, MultiLevelDiscloser, Query, ReleaseArtifact,
/// #     SpecializationConfig, Specializer};
/// # use gdp_datagen::{DblpConfig, DblpGenerator};
/// # use gdp_serve::{IndexedRelease, ReleaseStore};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// # let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
/// # let hierarchy = Specializer::new(SpecializationConfig::median(2)?)
/// #     .specialize(&graph, &mut rng)?;
/// # let release = MultiLevelDiscloser::new(
/// #     DisclosureConfig::count_only(0.5, 1e-6)?
/// #         .with_queries(vec![Query::PerGroupCounts]))
/// #     .disclose(&graph, &hierarchy, &mut rng)?;
/// # let week1 = ReleaseArtifact::seal("dblp", 1, hierarchy, release)?;
/// let store = ReleaseStore::new();
/// store.insert(IndexedRelease::new(week1)?)?;
/// assert_eq!(store.epochs("dblp"), vec![1]);
/// assert!(store.get("dblp", 1).is_ok());
/// assert_eq!(store.latest("dblp").unwrap().artifact().epoch(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReleaseStore {
    shards: Vec<RwLock<Shard>>,
}

impl Default for ReleaseStore {
    fn default() -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| RwLock::new(Shard::new())).collect(),
        }
    }
}

impl ReleaseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fixed shard fan-out (`hash(dataset) % shard_count()`).
    pub fn shard_count() -> usize {
        SHARD_COUNT
    }

    fn shard(&self, dataset: &str) -> &RwLock<Shard> {
        &self.shards[shard_of(dataset)]
    }

    // Shard guards recover from lock poisoning instead of panicking: a
    // shard map is only ever mutated by whole-entry insert/replace, so a
    // thread that panicked while holding the lock cannot have left a
    // torn entry behind, and wedging every later reader would turn one
    // dead worker into a dead store.
    fn write_shard(&self, dataset: &str) -> std::sync::RwLockWriteGuard<'_, Shard> {
        self.shard(dataset)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn read_shard(&self, dataset: &str) -> std::sync::RwLockReadGuard<'_, Shard> {
        self.shard(dataset)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn insert_entry(
        &self,
        dataset: String,
        epoch: u64,
        entry: Entry,
        source: Option<PathBuf>,
    ) -> Result<()> {
        let mut shard = self.write_shard(&dataset);
        let key = (dataset, epoch);
        if let Some(existing) = shard.get(&key) {
            // Name both files when the collision is on-disk — the
            // mixed-format case (same epoch as .json and .gda) is
            // indistinguishable from a deployment bug without them.
            let paths = existing
                .source
                .iter()
                .chain(source.iter())
                .map(|p| p.display().to_string())
                .collect();
            return Err(ServeError::DuplicateRelease {
                dataset: key.0,
                epoch: key.1,
                paths,
            });
        }
        shard.insert(key, Registered { entry, source });
        Ok(())
    }

    /// Registers an indexed artifact under its manifest's
    /// `(dataset, epoch)` key.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateRelease`] when the key is taken.
    pub fn insert(&self, release: IndexedRelease) -> Result<()> {
        let manifest = release.artifact().manifest();
        let (dataset, epoch) = (manifest.dataset.clone(), manifest.epoch);
        self.insert_entry(dataset, epoch, Entry::Indexed(Arc::new(release)), None)
    }

    /// Registers a sealed artifact **without building its index yet** —
    /// the tables are built on first [`ReleaseStore::get`], under the
    /// shard's write lock. This is what a directory scan uses so that
    /// opening a store of a hundred epochs pays for the one epoch a
    /// consumer actually reads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateRelease`] when the key is taken.
    pub fn insert_sealed(&self, artifact: ReleaseArtifact) -> Result<()> {
        let (dataset, epoch) = (artifact.dataset().to_string(), artifact.epoch());
        self.insert_entry(dataset, epoch, Entry::Sealed(Box::new(artifact)), None)
    }

    /// [`ReleaseStore::insert_sealed`] with the backing file recorded,
    /// so lifecycle passes (retire-on-missing-file, GC deletion) can
    /// connect the registered release back to its on-disk form.
    fn insert_sealed_from(&self, artifact: ReleaseArtifact, source: &Path) -> Result<()> {
        let (dataset, epoch) = (artifact.dataset().to_string(), artifact.epoch());
        self.insert_entry(
            dataset,
            epoch,
            Entry::Sealed(Box::new(artifact)),
            Some(source.to_path_buf()),
        )
    }

    /// Unregisters a release, returning the backing file it was loaded
    /// from (the file itself is untouched — deletion is
    /// [`ReleaseStore::gc`]'s job).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRelease`] when no such `(dataset, epoch)`
    /// is registered.
    pub fn remove(&self, dataset: &str, epoch: u64) -> Result<Option<PathBuf>> {
        let mut shard = self.write_shard(dataset);
        let key = (dataset.to_string(), epoch);
        match shard.remove(&key) {
            Some(reg) => Ok(reg.source),
            None => Err(ServeError::UnknownRelease {
                dataset: key.0,
                epoch,
            }),
        }
    }

    /// Looks an artifact up by dataset and epoch, lazily building its
    /// index if this is the first access to a scanned entry.
    ///
    /// # Errors
    ///
    /// * [`ServeError::UnknownRelease`] when absent.
    /// * [`IndexedRelease::new`]'s errors when a lazily registered
    ///   artifact fails to index (the sealed entry stays registered, so
    ///   the error is repeatable rather than turning into
    ///   `UnknownRelease`).
    pub fn get(&self, dataset: &str, epoch: u64) -> Result<Arc<IndexedRelease>> {
        let key = (dataset.to_string(), epoch);
        {
            let shard = self.read_shard(dataset);
            match shard.get(&key).map(|reg| &reg.entry) {
                Some(Entry::Indexed(release)) => return Ok(Arc::clone(release)),
                Some(Entry::Sealed(_)) => {} // promote below, under the write lock
                None => {
                    return Err(ServeError::UnknownRelease {
                        dataset: key.0,
                        epoch,
                    })
                }
            }
        }
        let mut shard = self.write_shard(dataset);
        // Re-check under the write lock: another reader may have
        // promoted the entry while we waited.
        match shard.get(&key).map(|reg| &reg.entry) {
            Some(Entry::Indexed(release)) => Ok(Arc::clone(release)),
            Some(Entry::Sealed(_)) => {
                // Take the artifact out so promotion never clones it;
                // a failed build hands it back, so the sealed entry
                // stays registered and the error is repeatable. The
                // build runs under the shard write lock — promotion
                // happens at most once per artifact, so the one-time
                // stall buys every later reader a lock-free Arc clone.
                let Some(Registered {
                    entry: Entry::Sealed(artifact),
                    source,
                }) = shard.remove(&key)
                else {
                    unreachable!("entry matched Sealed under the same lock");
                };
                match IndexedRelease::promote(*artifact) {
                    Ok(indexed) => {
                        let indexed = Arc::new(indexed);
                        shard.insert(
                            key,
                            Registered {
                                entry: Entry::Indexed(Arc::clone(&indexed)),
                                source,
                            },
                        );
                        Ok(indexed)
                    }
                    Err((err, artifact)) => {
                        shard.insert(
                            key,
                            Registered {
                                entry: Entry::Sealed(Box::new(artifact)),
                                source,
                            },
                        );
                        Err(err)
                    }
                }
            }
            None => Err(ServeError::UnknownRelease {
                dataset: key.0,
                epoch,
            }),
        }
    }

    /// The highest-epoch **servable** artifact for a dataset, if any
    /// (indexing it lazily like [`ReleaseStore::get`]). An epoch whose
    /// artifact fails to index is skipped in favor of the next-newest
    /// one rather than masking the whole dataset; the skipped epoch
    /// stays listed by [`ReleaseStore::epochs`] and its typed,
    /// repeatable error is available from [`ReleaseStore::get`].
    pub fn latest(&self, dataset: &str) -> Option<Arc<IndexedRelease>> {
        self.epochs(dataset)
            .into_iter()
            .rev()
            .find_map(|epoch| self.get(dataset, epoch).ok())
    }

    /// Every epoch registered for a dataset, ascending.
    pub fn epochs(&self, dataset: &str) -> Vec<u64> {
        self.read_shard(dataset)
            .range((dataset.to_string(), 0)..=(dataset.to_string(), u64::MAX))
            .map(|((_, epoch), _)| *epoch)
            .collect()
    }

    /// Every dataset with at least one artifact, ascending, deduped.
    pub fn datasets(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            out.extend(shard.keys().map(|(dataset, _)| dataset.clone()));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scans a directory of artifact files (one sealed
    /// [`ReleaseArtifact`] per `.json` document or `.gda` binary
    /// container, any other entries ignored) into a store. Every file
    /// is parsed and **validated** during the scan — so a corrupt
    /// file, a foreign schema version or a duplicate
    /// `(dataset, epoch)` is a typed error naming the file, not a
    /// latent failure — but the per-level index tables are only built
    /// on first access ([`ReleaseStore::insert_sealed`]). Files are
    /// visited in name order, so which of two duplicate files is
    /// reported is deterministic; in particular, the same epoch
    /// present as both formats is a [`ServeError::DuplicateRelease`]
    /// naming both files, never a silent last-scan-wins.
    ///
    /// # Errors
    ///
    /// * [`ServeError::EmptyDirectory`] when no artifact files are
    ///   found.
    /// * [`ServeError::SchemaVersion`] for a manifest this build does
    ///   not read.
    /// * [`ServeError::DuplicateRelease`] when two files carry the same
    ///   `(dataset, epoch)` — both paths are named.
    /// * [`ServeError::Core`] wrapping `GraphError::Json` /
    ///   `GraphError::Binary` for malformed files, `GraphError::Io`
    ///   for filesystem failures, and `CoreError::Artifact` for
    ///   payloads that fail sealing re-validation.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        let mut candidates = Vec::new();
        for path in sorted_dir_entries(dir)? {
            if classify_stray(&path).is_none() && !is_pending_tmp(&path) {
                candidates.push(path);
            }
        }
        if candidates.is_empty() {
            return Err(ServeError::EmptyDirectory {
                path: dir.display().to_string(),
            });
        }
        let store = Self::new();
        for path in candidates {
            let artifact = parse_artifact(&path)?;
            store.insert_sealed_from(artifact, &path)?;
        }
        Ok(store)
    }

    /// The degraded-mode [`ReleaseStore::open_dir`]: scans `dir`
    /// tolerating everything short of the directory itself being
    /// unreadable. Valid artifacts register; stray entries are skipped
    /// with a typed note; damaged files — torn atomic-publish `*.tmp`
    /// debris, malformed JSON, foreign schema versions, checksum
    /// mismatches, failed validation — are **moved** into
    /// [`QUARANTINE_DIR`] so the next scan is clean while the bytes
    /// survive for post-mortem. Returns the store (possibly empty —
    /// degraded open never fails on an empty directory) and the
    /// per-file [`OpenReport`].
    ///
    /// This is what a serving frontend boots from after a crash: every
    /// previously committed epoch loads bit-identically (atomic publish
    /// guarantees committed files are whole), and whatever the crash
    /// tore is quarantined instead of taking serving down.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] (`GraphError::Io`) only when `dir` cannot
    /// be read at all.
    pub fn open_dir_report(dir: impl AsRef<Path>) -> Result<(Self, OpenReport)> {
        let store = Self::new();
        // A fresh open owns the directory: no publisher can be racing
        // us before the store even exists, so `*.tmp` debris is
        // necessarily a dead publish and gets quarantined.
        let report = store.scan_dir(dir.as_ref(), true)?;
        Ok((store, report))
    }

    /// Re-scans `dir` into this store — the hot-reload primitive. New
    /// artifact files register (epochs published since the last scan
    /// become servable), damaged files quarantine exactly as in
    /// [`ReleaseStore::open_dir_report`], and releases whose backing
    /// file vanished from `dir` (retention GC, operator deletion) are
    /// **retired** so consumers get a typed
    /// [`UnknownRelease`](ServeError::UnknownRelease) instead of
    /// deleted-but-still-served data.
    ///
    /// Two deliberate asymmetries against the fresh open:
    /// * `*.tmp` files are left alone (a live publisher may be mid
    ///   atomic write; its rename will land or its debris will be
    ///   swept by the next fresh open).
    /// * Quarantining a file that backs an already-registered release
    ///   detaches the entry from disk instead of retiring it — the
    ///   validated in-memory copy keeps serving, which is the most
    ///   robust reading of "a vandalized file must not take an epoch
    ///   down".
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] (`GraphError::Io`) only when `dir` cannot
    /// be read at all; per-file damage is a report entry, never an
    /// error.
    pub fn merge_dir(&self, dir: impl AsRef<Path>) -> Result<OpenReport> {
        self.scan_dir(dir.as_ref(), false)
    }

    fn scan_dir(&self, dir: &Path, sweep_tmp: bool) -> Result<OpenReport> {
        let mut outcomes = Vec::new();
        // Sources detached or re-seen this scan, exempt from retirement.
        let mut touched: HashSet<PathBuf> = HashSet::new();
        for path in sorted_dir_entries(dir)? {
            let rendered = path.display().to_string();
            if path.is_dir() && path.file_name().is_some_and(|n| n == QUARANTINE_DIR) {
                continue; // our own quarantine, not a stray
            }
            if let Some(note) = classify_stray(&path) {
                outcomes.push(FileOutcome::Stray {
                    path: rendered,
                    note: note.to_string(),
                });
                continue;
            }
            if is_pending_tmp(&path) {
                if sweep_tmp {
                    outcomes.push(self.quarantine(
                        dir,
                        &path,
                        "interrupted atomic publish (*.tmp debris)".to_string(),
                        &mut touched,
                    ));
                } else {
                    outcomes.push(FileOutcome::Stray {
                        path: rendered,
                        note: "atomic publish in flight (*.tmp)".to_string(),
                    });
                }
                continue;
            }
            match parse_artifact(&path) {
                Ok(artifact) => {
                    let (dataset, epoch) = (artifact.dataset().to_string(), artifact.epoch());
                    touched.insert(path.clone());
                    match self.insert_sealed_from(artifact, &path) {
                        Ok(()) => outcomes.push(FileOutcome::Loaded {
                            dataset,
                            epoch,
                            path: rendered,
                        }),
                        Err(ServeError::DuplicateRelease {
                            dataset,
                            epoch,
                            paths,
                        }) => {
                            let existing = paths.into_iter().find(|p| p != &rendered);
                            outcomes.push(FileOutcome::AlreadyRegistered {
                                dataset,
                                epoch,
                                path: rendered,
                                existing,
                            })
                        }
                        Err(other) => return Err(other),
                    }
                }
                Err(err) => {
                    outcomes.push(self.quarantine(dir, &path, err.to_string(), &mut touched))
                }
            }
        }
        // Retire registered releases whose backing file under `dir` is
        // gone — unless this very scan moved it to quarantine (the
        // in-memory copy keeps serving) or re-registered it.
        for (dataset, epoch, source) in self.sources_under(dir) {
            if !touched.contains(&source)
                && !source.exists()
                && self.remove(&dataset, epoch).is_ok()
            {
                outcomes.push(FileOutcome::Retired {
                    dataset,
                    epoch,
                    path: source.display().to_string(),
                });
            }
        }
        Ok(OpenReport { outcomes })
    }

    /// Moves a damaged file into `dir`'s [`QUARANTINE_DIR`], detaching
    /// any registered release that was loaded from it so the in-memory
    /// copy keeps serving. Never fails the scan: if even the move
    /// fails the file is reported as quarantined-in-place with both
    /// errors in the reason.
    fn quarantine(
        &self,
        dir: &Path,
        path: &Path,
        reason: String,
        touched: &mut HashSet<PathBuf>,
    ) -> FileOutcome {
        touched.insert(path.to_path_buf());
        self.detach_source(path);
        let qdir = dir.join(QUARANTINE_DIR);
        let file_name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        let target = qdir.join(&file_name);
        let moved = std::fs::create_dir_all(&qdir)
            .and_then(|()| {
                // Never overwrite earlier evidence: suffix until free.
                let mut target = target.clone();
                let mut attempt = 1u32;
                while target.exists() {
                    let mut name = file_name.clone();
                    name.push(format!(".{attempt}"));
                    target = qdir.join(name);
                    attempt += 1;
                }
                std::fs::rename(path, &target).map(|()| target)
            });
        match moved {
            Ok(target) => FileOutcome::Quarantined {
                path: path.display().to_string(),
                moved_to: target.display().to_string(),
                reason,
            },
            Err(e) => FileOutcome::Quarantined {
                path: path.display().to_string(),
                moved_to: path.display().to_string(),
                reason: format!("{reason}; quarantine move also failed: {e}"),
            },
        }
    }

    /// Forgets that any registered release is backed by `path` (the
    /// file was quarantined): the release keeps serving from memory
    /// and is no longer subject to retire-on-missing-file.
    fn detach_source(&self, path: &Path) {
        for shard in &self.shards {
            let mut shard = shard.write().unwrap_or_else(std::sync::PoisonError::into_inner);
            for reg in shard.values_mut() {
                if reg.source.as_deref() == Some(path) {
                    reg.source = None;
                }
            }
        }
    }

    /// Every registered `(dataset, epoch, source)` whose source file
    /// lives directly in `dir`.
    fn sources_under(&self, dir: &Path) -> Vec<(String, u64, PathBuf)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            for ((dataset, epoch), reg) in shard.iter() {
                if let Some(source) = &reg.source {
                    if source.parent() == Some(dir) {
                        out.push((dataset.clone(), *epoch, source.clone()));
                    }
                }
            }
        }
        out
    }

    /// Applies a [`RetentionPolicy`] to every dataset (or just
    /// `dataset`, when given): superseded epochs are unregistered and
    /// their backing files durably deleted (unlink + directory fsync,
    /// the same discipline atomic publish uses). The newest epoch of
    /// each dataset always survives. Deletion failures are recorded in
    /// the [`GcReport`] and do not stop the pass; the release is
    /// dropped from the store regardless, so a stuck file costs disk,
    /// not correctness.
    pub fn gc(&self, policy: &RetentionPolicy, dataset: Option<&str>) -> GcReport {
        let datasets: Vec<String> = match dataset {
            Some(d) => vec![d.to_string()],
            None => self.datasets(),
        };
        let mut evictions = Vec::new();
        for dataset in datasets {
            for epoch in policy.evict_plan(&self.epochs(&dataset)) {
                let Ok(source) = self.remove(&dataset, epoch) else {
                    continue; // raced away; nothing to evict
                };
                let (deleted, error) = match &source {
                    None => (true, None),
                    Some(path) => match graph_io::remove_file_durable(path) {
                        Ok(()) => (true, None),
                        Err(e) => (false, Some(e.to_string())),
                    },
                };
                evictions.push(GcEviction {
                    dataset: dataset.clone(),
                    epoch,
                    path: source.map(|p| p.display().to_string()),
                    deleted,
                    error,
                });
            }
        }
        GcReport { evictions }
    }

    /// Writes every registered release into `dir` under its canonical
    /// file name via the crash-safe atomic discipline
    /// ([`ReleaseArtifact::save_atomic`]), creating `dir` as needed,
    /// and records each file as the release's backing source (so a
    /// later [`ReleaseStore::gc`] can delete it). Existing files are
    /// atomically overwritten — artifacts are immutable, so a
    /// same-keyed file can only be the same content or damage, and
    /// either way the fresh bytes win. Returns the written paths in
    /// `(dataset, epoch)` order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Core`] (`GraphError::Io`/`Json`) on the first
    /// failed write; earlier files remain (each was already durable).
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<Vec<PathBuf>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(gdp_graph::GraphError::from)?;
        let mut keys: Vec<(String, u64)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap_or_else(std::sync::PoisonError::into_inner);
            keys.extend(shard.keys().cloned());
        }
        keys.sort();
        let mut written = Vec::with_capacity(keys.len());
        for (dataset, epoch) in keys {
            // Clone the artifact out under the read lock, write outside
            // any lock, then record the source under the write lock.
            let artifact = {
                let shard = self.read_shard(&dataset);
                match shard.get(&(dataset.clone(), epoch)).map(|reg| &reg.entry) {
                    Some(Entry::Sealed(a)) => (**a).clone(),
                    Some(Entry::Indexed(i)) => i.artifact().clone(),
                    None => continue, // removed mid-save
                }
            };
            let path = dir.join(ReleaseArtifact::canonical_file_name(&dataset, epoch));
            artifact.save_atomic(&path).map_err(ServeError::Core)?;
            let mut shard = self.write_shard(&dataset);
            if let Some(reg) = shard.get_mut(&(dataset.clone(), epoch)) {
                reg.source = Some(path.clone());
            }
            written.push(path);
        }
        Ok(written)
    }
}

/// Every entry of `dir`, name-sorted so scan order (and therefore
/// which duplicate wins, what a report lists first) is deterministic.
fn sorted_dir_entries(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|entry| entry.path())
        .collect();
    paths.sort();
    Ok(paths)
}

/// Why a directory entry is not an artifact candidate (`None` = it is
/// one). Strays are *skipped*, never quarantined: they are someone
/// else's files sitting in our directory, not damaged artifacts.
fn classify_stray(path: &Path) -> Option<&'static str> {
    if path.is_dir() {
        return Some("directory");
    }
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.starts_with('.') {
        return Some("hidden file");
    }
    if name.ends_with('~') || name.ends_with(".bak") || name.ends_with(".swp") {
        return Some("editor backup");
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") | Some("gda") | Some("tmp") => None,
        _ => Some("not an artifact file (.json/.gda)"),
    }
}

/// Whether this is a staged atomic write (`*.tmp`) — publish debris on
/// a fresh open, a possibly live publish during a re-scan.
fn is_pending_tmp(path: &Path) -> bool {
    path.extension().is_some_and(|ext| ext == "tmp")
}

/// Parses and fully validates one artifact file, dispatching on the
/// extension ([`ArtifactFormat::from_path`]): document/container
/// shape, schema version range (with file context), sealing
/// re-validation, checksum verification. The binary route verifies the
/// container's byte digest before decoding a single field; the JSON
/// route re-hashes the canonical payload against the manifest digest.
fn parse_artifact(path: &Path) -> Result<ReleaseArtifact> {
    let schema_check = |schema_version: u32| {
        if (MIN_ARTIFACT_SCHEMA_VERSION..=ARTIFACT_SCHEMA_VERSION).contains(&schema_version) {
            Ok(())
        } else {
            Err(ServeError::SchemaVersion {
                path: path.display().to_string(),
                found: schema_version,
                supported: ARTIFACT_SCHEMA_VERSION,
            })
        }
    };
    match ArtifactFormat::from_path(path) {
        Some(ArtifactFormat::Binary) => {
            let bytes = std::fs::read(path)?;
            let decoded = codec::decode(&bytes).map_err(ServeError::Core)?;
            schema_check(decoded.manifest().schema_version)?;
            decoded.seal().map_err(ServeError::Core)
        }
        _ => {
            let file = File::open(path)?;
            let payload: ArtifactPayload = graph_io::read_json(BufReader::new(file))?;
            schema_check(payload.manifest().schema_version)?;
            ReleaseArtifact::try_from(payload).map_err(ServeError::Core)
        }
    }
}

/// A cloneable, thread-shareable handle to a [`ReleaseStore`] — the
/// read-mostly form the serving path holds.
///
/// The store itself already takes `&self` everywhere; the handle adds
/// shared ownership (`Arc`) so any number of
/// [`AnswerService`](crate::AnswerService)s, reader threads and
/// background republishers can hold the *same* registry: a writer
/// inserting next week's artifact is visible to every reader at the
/// next lookup, without any reader holding more than a shard read
/// lock. Derefs to [`ReleaseStore`], so every store method is available
/// on the handle.
#[derive(Debug, Clone, Default)]
pub struct ShardedStoreHandle {
    inner: Arc<ReleaseStore>,
}

impl ShardedStoreHandle {
    /// Wraps a store for shared ownership.
    pub fn new(store: ReleaseStore) -> Self {
        Self {
            inner: Arc::new(store),
        }
    }
}

impl Deref for ShardedStoreHandle {
    type Target = ReleaseStore;

    fn deref(&self) -> &ReleaseStore {
        &self.inner
    }
}

impl From<ReleaseStore> for ShardedStoreHandle {
    fn from(store: ReleaseStore) -> Self {
        Self::new(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::{
        DisclosureConfig, MultiLevelDiscloser, Query, SpecializationConfig, Specializer,
    };
    use gdp_datagen::{DblpConfig, DblpGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn artifact(dataset: &str, epoch: u64, seed: u64) -> ReleaseArtifact {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(2).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.5, 1e-6)
                .unwrap()
                .with_queries(vec![Query::PerGroupCounts]),
        )
        .disclose(&graph, &hierarchy, &mut rng)
        .unwrap();
        ReleaseArtifact::seal(dataset, epoch, hierarchy, release).unwrap()
    }

    fn indexed(dataset: &str, epoch: u64, seed: u64) -> IndexedRelease {
        IndexedRelease::new(artifact(dataset, epoch, seed)).unwrap()
    }

    #[test]
    fn keyed_lookup_latest_and_listings() {
        let store = ReleaseStore::new();
        store.insert(indexed("dblp", 1, 1)).unwrap();
        store.insert(indexed("dblp", 3, 2)).unwrap();
        store.insert(indexed("pharmacy", 2, 3)).unwrap();
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        assert_eq!(store.get("dblp", 3).unwrap().artifact().epoch(), 3);
        assert!(matches!(
            store.get("dblp", 2).unwrap_err(),
            ServeError::UnknownRelease { epoch: 2, .. }
        ));
        assert_eq!(store.latest("dblp").unwrap().artifact().epoch(), 3);
        assert!(store.latest("movies").is_none());
        assert_eq!(store.epochs("dblp"), vec![1, 3]);
        assert_eq!(store.datasets(), vec!["dblp", "pharmacy"]);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let store = ReleaseStore::new();
        store.insert(indexed("dblp", 1, 1)).unwrap();
        let err = store.insert(indexed("dblp", 1, 9)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::DuplicateRelease { epoch: 1, .. }
        ));
        // The original stays.
        assert_eq!(store.len(), 1);
        // The sealed path hits the same guard.
        assert!(matches!(
            store.insert_sealed(artifact("dblp", 1, 2)).unwrap_err(),
            ServeError::DuplicateRelease { epoch: 1, .. }
        ));
    }

    #[test]
    fn sealed_entries_index_lazily_and_only_once() {
        let store = ReleaseStore::new();
        store.insert_sealed(artifact("dblp", 7, 4)).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.epochs("dblp"), vec![7]);
        let first = store.get("dblp", 7).unwrap();
        let second = store.get("dblp", 7).unwrap();
        // Promotion happened once: both handles share the same index.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.artifact().epoch(), 7);
    }

    #[test]
    fn latest_skips_unindexable_epochs_and_get_keeps_their_error() {
        // An artifact whose per-group vector is the wrong length slips
        // past sealing (which cross-checks group *counts*, not query
        // vector shapes) but cannot be indexed. `latest` must fall back
        // to the newest servable epoch instead of reporting the whole
        // dataset absent, while `get` keeps returning the typed error.
        let good = artifact("dblp", 1, 1);
        let mut bad_release_levels = Vec::new();
        for (i, level) in good.hierarchy().levels().iter().enumerate() {
            let mut rel = good.release().level(i).unwrap().clone();
            if let Some(q) = rel.queries.first_mut() {
                q.noisy_values = vec![0.0]; // wrong length for the level
            }
            assert_eq!(rel.group_count, level.group_count());
            bad_release_levels.push(rel);
        }
        let bad_release = gdp_core::MultiLevelRelease::new(
            good.release().mechanism(),
            good.release().epsilon_g(),
            good.release().delta(),
            bad_release_levels,
        )
        .unwrap();
        let bad = ReleaseArtifact::seal("dblp", 2, good.hierarchy().clone(), bad_release)
            .unwrap();

        let store = ReleaseStore::new();
        store.insert_sealed(good).unwrap();
        store.insert_sealed(bad).unwrap();
        assert_eq!(store.epochs("dblp"), vec![1, 2]);
        // Epoch 2 fails to index, repeatably; epoch 1 serves.
        assert!(store.get("dblp", 2).is_err());
        assert!(store.get("dblp", 2).is_err(), "error must be repeatable");
        assert_eq!(store.latest("dblp").unwrap().artifact().epoch(), 1);
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        for dataset in ["dblp", "pharmacy", "movies", "", "a", "weekly-2026-07"] {
            let s = shard_of(dataset);
            assert!(s < SHARD_COUNT);
            assert_eq!(s, shard_of(dataset), "routing must be a pure function");
        }
    }

    #[test]
    fn open_dir_scans_and_serves() {
        let dir = std::env::temp_dir().join(format!("gdp-store-ok-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (dataset, epoch, seed) in [("dblp", 1, 1), ("dblp", 2, 2), ("pharmacy", 1, 3)] {
            let file = File::create(dir.join(format!("{dataset}-{epoch}.json"))).unwrap();
            artifact(dataset, epoch, seed)
                .write_json(std::io::BufWriter::new(file))
                .unwrap();
        }
        // A non-artifact sibling is ignored.
        std::fs::write(dir.join("README.txt"), "not an artifact").unwrap();
        let store = ReleaseStore::open_dir(&dir).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.datasets(), vec!["dblp", "pharmacy"]);
        assert_eq!(store.epochs("dblp"), vec![1, 2]);
        assert_eq!(store.latest("dblp").unwrap().artifact().epoch(), 2);
        assert!(store.get("pharmacy", 1).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn handle_shares_one_registry() {
        let handle = ShardedStoreHandle::from(ReleaseStore::new());
        let clone = handle.clone();
        handle.insert(indexed("dblp", 1, 1)).unwrap();
        // The clone sees the insert: one registry, shared.
        assert_eq!(clone.len(), 1);
        assert!(clone.get("dblp", 1).is_ok());
        assert_eq!(ShardedStoreHandle::default().len(), 0);
    }
}
