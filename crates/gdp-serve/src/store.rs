//! The artifact registry a deployment keeps as it republishes.

use std::collections::BTreeMap;

use crate::error::ServeError;
use crate::index::IndexedRelease;
use crate::Result;

/// Indexed release artifacts keyed by `(dataset, epoch)`.
///
/// A deployment that republishes weekly accumulates one artifact per
/// epoch per dataset; the store is the lookup structure the
/// [`AnswerService`](crate::AnswerService) routes requests through.
/// Keys are unique — published artifacts are immutable, so inserting a
/// second artifact under an existing `(dataset, epoch)` is rejected
/// with [`ServeError::DuplicateRelease`] instead of silently replacing
/// answers consumers may already have seen.
///
/// ```
/// # use gdp_core::{DisclosureConfig, MultiLevelDiscloser, Query, ReleaseArtifact,
/// #     SpecializationConfig, Specializer};
/// # use gdp_datagen::{DblpConfig, DblpGenerator};
/// # use gdp_serve::{IndexedRelease, ReleaseStore};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// # let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
/// # let hierarchy = Specializer::new(SpecializationConfig::median(2)?)
/// #     .specialize(&graph, &mut rng)?;
/// # let release = MultiLevelDiscloser::new(
/// #     DisclosureConfig::count_only(0.5, 1e-6)?
/// #         .with_queries(vec![Query::PerGroupCounts]))
/// #     .disclose(&graph, &hierarchy, &mut rng)?;
/// # let week1 = ReleaseArtifact::seal("dblp", 1, hierarchy, release)?;
/// let mut store = ReleaseStore::new();
/// store.insert(IndexedRelease::new(week1)?)?;
/// assert_eq!(store.epochs("dblp"), vec![1]);
/// assert!(store.get("dblp", 1).is_ok());
/// assert_eq!(store.latest("dblp").unwrap().artifact().epoch(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReleaseStore {
    releases: BTreeMap<(String, u64), IndexedRelease>,
}

impl ReleaseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an indexed artifact under its manifest's
    /// `(dataset, epoch)` key.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::DuplicateRelease`] when the key is taken.
    pub fn insert(&mut self, release: IndexedRelease) -> Result<()> {
        let manifest = release.artifact().manifest();
        let key = (manifest.dataset.clone(), manifest.epoch);
        if self.releases.contains_key(&key) {
            return Err(ServeError::DuplicateRelease {
                dataset: key.0,
                epoch: key.1,
            });
        }
        self.releases.insert(key, release);
        Ok(())
    }

    /// Looks an artifact up by dataset and epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownRelease`] when absent.
    pub fn get(&self, dataset: &str, epoch: u64) -> Result<&IndexedRelease> {
        self.releases
            .get(&(dataset.to_string(), epoch))
            .ok_or_else(|| ServeError::UnknownRelease {
                dataset: dataset.to_string(),
                epoch,
            })
    }

    /// The highest-epoch artifact for a dataset, if any.
    pub fn latest(&self, dataset: &str) -> Option<&IndexedRelease> {
        self.releases
            .range((dataset.to_string(), 0)..=(dataset.to_string(), u64::MAX))
            .next_back()
            .map(|(_, release)| release)
    }

    /// Every epoch registered for a dataset, ascending.
    pub fn epochs(&self, dataset: &str) -> Vec<u64> {
        self.releases
            .range((dataset.to_string(), 0)..=(dataset.to_string(), u64::MAX))
            .map(|((_, epoch), _)| *epoch)
            .collect()
    }

    /// Every dataset with at least one artifact, ascending, deduped.
    pub fn datasets(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (dataset, _) in self.releases.keys() {
            if out.last() != Some(&dataset.as_str()) {
                out.push(dataset);
            }
        }
        out
    }

    /// Number of registered artifacts.
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::{
        DisclosureConfig, MultiLevelDiscloser, Query, ReleaseArtifact,
        SpecializationConfig, Specializer,
    };
    use gdp_datagen::{DblpConfig, DblpGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn indexed(dataset: &str, epoch: u64, seed: u64) -> IndexedRelease {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(2).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.5, 1e-6)
                .unwrap()
                .with_queries(vec![Query::PerGroupCounts]),
        )
        .disclose(&graph, &hierarchy, &mut rng)
        .unwrap();
        IndexedRelease::new(
            ReleaseArtifact::seal(dataset, epoch, hierarchy, release).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn keyed_lookup_latest_and_listings() {
        let mut store = ReleaseStore::new();
        store.insert(indexed("dblp", 1, 1)).unwrap();
        store.insert(indexed("dblp", 3, 2)).unwrap();
        store.insert(indexed("pharmacy", 2, 3)).unwrap();
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        assert_eq!(store.get("dblp", 3).unwrap().artifact().epoch(), 3);
        assert!(matches!(
            store.get("dblp", 2).unwrap_err(),
            ServeError::UnknownRelease { epoch: 2, .. }
        ));
        assert_eq!(store.latest("dblp").unwrap().artifact().epoch(), 3);
        assert!(store.latest("movies").is_none());
        assert_eq!(store.epochs("dblp"), vec![1, 3]);
        assert_eq!(store.datasets(), vec!["dblp", "pharmacy"]);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut store = ReleaseStore::new();
        store.insert(indexed("dblp", 1, 1)).unwrap();
        let err = store.insert(indexed("dblp", 1, 9)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::DuplicateRelease { epoch: 1, .. }
        ));
        // The original stays.
        assert_eq!(store.len(), 1);
    }
}
