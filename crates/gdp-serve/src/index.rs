//! Query-optimized view of a sealed release artifact.

use std::sync::Arc;

use rayon::prelude::*;

use gdp_core::{AccessPolicy, CoreError, ReleaseArtifact};
use gdp_graph::Side;

use crate::error::ServeError;
use crate::query::{Query, TypedAnswer};
use crate::Result;

/// One side of one indexed level: the node→group table plus the
/// per-group noisy mass, both raw and pre-divided by the group size.
#[derive(Debug, Clone)]
struct IndexedSide {
    /// `group_of[node]` — a copy of the partition's block assignment,
    /// laid out for the gather loop.
    group_of: Vec<u32>,
    /// `premass[g] = noisy(g) / |g|` — the exact float the scan-path
    /// estimator computes per touched group, hoisted to build time.
    premass: Vec<f64>,
    /// `mass[g] = noisy(g)` — the raw released mass, served verbatim by
    /// group-mass lookups.
    mass: Vec<f64>,
    /// `Σ mass[g]` in group order, folded once at build time — the
    /// side-total answer as an O(1) load.
    total: f64,
}

impl IndexedSide {
    fn node_count(&self) -> u32 {
        self.group_of.len() as u32
    }
}

/// The group tables of one level — present when the level released
/// [`gdp_core::Query::PerGroupCounts`].
#[derive(Debug, Clone)]
struct IndexedGroups {
    left: IndexedSide,
    right: IndexedSide,
}

/// One hierarchy level's precomputed tables. Either half may be absent
/// when the corresponding statistic was not released at the level.
#[derive(Debug, Clone)]
struct IndexedLevel {
    /// Subset gathers, group-mass lookups and side totals need these.
    groups: Option<IndexedGroups>,
    /// The released left-degree histogram, materialized **once** at
    /// index build and served by reference (`Arc` clone) forever after.
    histogram: Option<Arc<[f64]>>,
}

/// A [`ReleaseArtifact`] plus the precomputed tables that turn every
/// [`Query`] variant into a table lookup.
///
/// For every level that released [`gdp_core::Query::PerGroupCounts`],
/// the index holds each side's node→group table and per-group noisy
/// mass — raw (group-mass lookups, side totals) and pre-divided by
/// `|g|` (subset gathers). A subset estimate then visits exactly the
/// queried nodes — an `O(|S|)` gather — instead of scanning all groups
/// behind a freshly built estimator; a group mass or side total never
/// rescans the release's query list. Levels that released a
/// left-degree histogram additionally carry it materialized, served by
/// `Arc` reference. Every variant's answer is **bit-identical** to its
/// core-path rescan baseline
/// ([`SubsetCountEstimator::estimate`](gdp_core::answering::SubsetCountEstimator::estimate),
/// [`scan_group_mass`](gdp_core::answering::scan_group_mass),
/// [`scan_degree_histogram`](gdp_core::answering::scan_degree_histogram),
/// [`scan_side_total`](gdp_core::answering::scan_side_total)), errors
/// included; conformance proptests pin the equivalences.
///
/// Everything here is post-processing of an already-released bundle:
/// building the index, and answering any number of queries from it,
/// consumes no privacy budget.
#[derive(Debug, Clone)]
pub struct IndexedRelease {
    artifact: ReleaseArtifact,
    policy: AccessPolicy,
    levels: Vec<IndexedLevel>,
}

impl IndexedRelease {
    /// Indexes an artifact. Levels without a per-group release are kept
    /// (their metadata stays served from the artifact) but cannot answer
    /// subset, group-mass or side-total queries; levels without a
    /// histogram release cannot answer degree-histogram queries.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] when a level's per-group vector
    /// disagrees with its hierarchy level's group count (a malformed
    /// artifact that slipped past sealing cannot be indexed).
    pub fn new(artifact: ReleaseArtifact) -> Result<Self> {
        match Self::promote(artifact) {
            Ok(indexed) => Ok(indexed),
            Err((err, _)) => Err(err),
        }
    }

    /// Like [`IndexedRelease::new`], but hands the artifact back on
    /// failure — the store's lazy-promotion path uses this so a sealed
    /// entry that cannot be indexed stays registered (the error is
    /// repeatable) without ever cloning the artifact on the happy path.
    // The large Err tuple is the point: it returns the artifact to the
    // caller instead of dropping (or cloning) it, and the error path is
    // cold by construction.
    #[allow(clippy::result_large_err)]
    pub(crate) fn promote(
        artifact: ReleaseArtifact,
    ) -> std::result::Result<Self, (ServeError, ReleaseArtifact)> {
        match Self::build_tables(&artifact) {
            Ok((policy, levels)) => Ok(Self {
                artifact,
                policy,
                levels,
            }),
            Err(err) => Err((err, artifact)),
        }
    }

    fn build_tables(artifact: &ReleaseArtifact) -> Result<(AccessPolicy, Vec<IndexedLevel>)> {
        let policy = AccessPolicy::new(artifact.level_count()).map_err(ServeError::Core)?;
        let mut levels = Vec::with_capacity(artifact.level_count());
        for (level_release, level) in artifact
            .release()
            .levels()
            .iter()
            .zip(artifact.hierarchy().levels())
        {
            let histogram = level_release
                .left_degree_histogram()
                .map(|q| Arc::from(q.noisy_values.as_slice()));
            let Some(per_group) = level_release.per_group_counts() else {
                levels.push(IndexedLevel {
                    groups: None,
                    histogram,
                });
                continue;
            };
            let lb = level.left().block_count() as usize;
            let rb = level.right().block_count() as usize;
            if per_group.noisy_values.len() != lb + rb {
                return Err(ServeError::Core(CoreError::InvalidConfig(format!(
                    "level {}: per-group vector length {} does not match group count {}",
                    level_release.level,
                    per_group.noisy_values.len(),
                    lb + rb
                ))));
            }
            let index_side = |partition: &gdp_graph::SidePartition, noisy: &[f64]| {
                let sizes = partition.block_sizes();
                IndexedSide {
                    group_of: partition.assignment().to_vec(),
                    premass: noisy
                        .iter()
                        .zip(&sizes)
                        .map(|(&mass, &size)| mass / size as f64)
                        .collect(),
                    mass: noisy.to_vec(),
                    total: noisy.iter().sum(),
                }
            };
            levels.push(IndexedLevel {
                groups: Some(IndexedGroups {
                    left: index_side(level.left(), &per_group.noisy_values[..lb]),
                    right: index_side(level.right(), &per_group.noisy_values[lb..]),
                }),
                histogram,
            });
        }
        Ok((policy, levels))
    }

    /// The underlying sealed artifact.
    pub fn artifact(&self) -> &ReleaseArtifact {
        &self.artifact
    }

    /// The monotone access policy over this artifact's levels.
    pub fn policy(&self) -> &AccessPolicy {
        &self.policy
    }

    /// Number of hierarchy levels in the artifact.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Whether `level` can answer subset, group-mass and side-total
    /// queries (released per-group counts).
    pub fn is_indexed(&self, level: usize) -> bool {
        matches!(
            self.levels.get(level),
            Some(IndexedLevel { groups: Some(_), .. })
        )
    }

    fn level(&self, level: usize) -> Result<&IndexedLevel> {
        self.levels.get(level).ok_or(ServeError::Core(CoreError::LevelOutOfRange {
            level,
            level_count: self.levels.len(),
        }))
    }

    fn indexed_groups(&self, level: usize) -> Result<&IndexedGroups> {
        self.level(level)?
            .groups
            .as_ref()
            .ok_or(ServeError::LevelNotIndexed { level })
    }

    fn indexed_side(&self, level: usize, side: Side) -> Result<&IndexedSide> {
        let groups = self.indexed_groups(level)?;
        Ok(match side {
            Side::Left => &groups.left,
            Side::Right => &groups.right,
        })
    }

    /// Estimates the association count incident to `nodes` on `side`
    /// from `level`'s noisy per-group release — the `O(|S|)` gather.
    ///
    /// Semantics, float-for-float and error-for-error, are those of
    /// [`gdp_core::answering::SubsetCountEstimator::estimate`]: nodes
    /// must be in range and free of duplicates (first offender in
    /// subset order wins), and terms accumulate per node in subset
    /// order as `premass(g(v))`.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] with [`CoreError::LevelOutOfRange`] /
    ///   [`CoreError::SubsetNodeOutOfRange`] /
    ///   [`CoreError::DuplicateSubsetNode`].
    /// * [`ServeError::LevelNotIndexed`] when the level released no
    ///   per-group counts.
    pub fn estimate(&self, level: usize, side: Side, nodes: &[u32]) -> Result<f64> {
        let indexed_side = self.indexed_side(level, side)?;
        let n = indexed_side.node_count();
        // Hot path: the lane-structured gather kernel — a chunked
        // branchless validation sweep over a reusable scratch bitmap,
        // then a pure check-free double gather whose ordered fold
        // matches the scalar summation bit-for-bit (see
        // `crate::kernels` for the structure and the pinned scalar
        // fallback it is tested against).
        match crate::kernels::gather_subset(&indexed_side.group_of, &indexed_side.premass, nodes) {
            Some(total) => Ok(total),
            None => {
                // Cold path: the canonical validation walk — shared with
                // the scan estimator — reports the error, so precedence
                // (first offender in subset order) is identical to the
                // baseline's by construction.
                Err(match gdp_core::answering::validate_subset(side, nodes, n) {
                    Err(err) => ServeError::Core(err),
                    // The gather and the canonical walk disagreeing on
                    // defectiveness would be a serving-layer bug; report it
                    // typed rather than killing the worker.
                    Ok(()) => ServeError::Internal(
                        "subset gather flagged a defect the canonical validation walk did not"
                            .to_string(),
                    ),
                })
            }
        }
    }

    /// Answers a batch of subset queries, fanning out over rayon.
    /// Answering is RNG-free pure post-processing, so the output is
    /// identical to a sequential loop at any thread count.
    ///
    /// # Errors
    ///
    /// The same errors as [`IndexedRelease::estimate`] (which failing
    /// subset's error surfaces is unspecified).
    pub fn estimate_batch(
        &self,
        level: usize,
        side: Side,
        subsets: &[Vec<u32>],
    ) -> Result<Vec<f64>> {
        subsets
            .par_iter()
            .map(|nodes| self.estimate(level, side, nodes))
            .collect()
    }

    /// The raw noisy mass of one group at a level — exactly the value
    /// the release published for it, served without touching the
    /// release's query list
    /// ([`gdp_core::answering::scan_group_mass`] is the rescan
    /// baseline).
    ///
    /// # Errors
    ///
    /// * Level errors as in [`IndexedRelease::estimate`].
    /// * [`ServeError::Core`] with [`CoreError::GroupOutOfRange`] when
    ///   `group` exceeds the side's group count.
    pub fn group_mass(&self, level: usize, side: Side, group: u32) -> Result<f64> {
        let indexed_side = self.indexed_side(level, side)?;
        let group_count = indexed_side.mass.len() as u32;
        if group >= group_count {
            return Err(ServeError::Core(CoreError::GroupOutOfRange {
                side,
                group,
                group_count,
            }));
        }
        Ok(indexed_side.mass[group as usize])
    }

    /// The whole-side estimate at a level — every group's raw noisy
    /// mass summed in group order, folded **once** at index build and
    /// served as an O(1) load, bit-identical to
    /// [`gdp_core::answering::scan_side_total`] (and therefore to
    /// [`SubsetCountEstimator::estimate_side_total`](gdp_core::answering::SubsetCountEstimator::estimate_side_total))
    /// because both fold the same slice in the same order.
    ///
    /// # Errors
    ///
    /// Same level errors as [`IndexedRelease::estimate`].
    pub fn side_total(&self, level: usize, side: Side) -> Result<f64> {
        Ok(self.indexed_side(level, side)?.total)
    }

    /// The noisy left-degree histogram released at a level, served by
    /// reference — the bins were materialized once at index build, and
    /// every call clones the `Arc`, never the data
    /// ([`gdp_core::answering::scan_degree_histogram`] is the rescan
    /// baseline).
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] with [`CoreError::LevelOutOfRange`] for
    ///   unknown levels.
    /// * [`ServeError::StatisticNotReleased`] when `side` is
    ///   [`Side::Right`] (the pipeline releases left histograms only)
    ///   or the level released no histogram.
    pub fn degree_histogram(&self, level: usize, side: Side) -> Result<Arc<[f64]>> {
        let indexed = self.level(level)?;
        if side == Side::Right {
            return Err(ServeError::StatisticNotReleased {
                level,
                statistic: "right degree histogram".to_string(),
            });
        }
        indexed
            .histogram
            .clone()
            .ok_or_else(|| ServeError::StatisticNotReleased {
                level,
                statistic: "degree histogram".to_string(),
            })
    }

    /// Dispatches one typed [`Query`] at a level — the per-variant
    /// entry point [`AnswerService`](crate::AnswerService) routes
    /// through.
    ///
    /// # Errors
    ///
    /// The union of the variant methods' errors
    /// ([`IndexedRelease::estimate`], [`IndexedRelease::group_mass`],
    /// [`IndexedRelease::degree_histogram`],
    /// [`IndexedRelease::side_total`]).
    pub fn answer(&self, level: usize, query: &Query) -> Result<TypedAnswer> {
        match query {
            Query::SubsetCount(q) => {
                self.estimate(level, q.side, &q.nodes).map(TypedAnswer::Scalar)
            }
            Query::GroupMass { side, group } => {
                self.group_mass(level, *side, *group).map(TypedAnswer::Scalar)
            }
            Query::DegreeHistogram { side } => {
                self.degree_histogram(level, *side).map(TypedAnswer::Histogram)
            }
            Query::SideTotal { side } => {
                self.side_total(level, *side).map(TypedAnswer::Scalar)
            }
        }
    }

    /// Answers a batch of typed queries at one level, fanning out over
    /// rayon. Answering is RNG-free pure post-processing, so the output
    /// is identical to a sequential loop at any thread count.
    ///
    /// # Errors
    ///
    /// Same as [`IndexedRelease::answer`] (which failing query's error
    /// surfaces is unspecified).
    pub fn answer_batch(&self, level: usize, queries: &[Query]) -> Result<Vec<TypedAnswer>> {
        queries
            .par_iter()
            .map(|query| self.answer(level, query))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::answering::{
        scan_degree_histogram, scan_group_mass, scan_side_total, SubsetCountEstimator,
    };
    use gdp_core::{
        DisclosureConfig, MultiLevelDiscloser, Query as CoreQuery, SpecializationConfig,
        Specializer,
    };
    use gdp_datagen::{DblpConfig, DblpGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn artifact() -> ReleaseArtifact {
        let mut rng = StdRng::seed_from_u64(80);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(3).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.9, 1e-6)
                .unwrap()
                .with_queries(vec![
                    CoreQuery::TotalAssociations,
                    CoreQuery::PerGroupCounts,
                    CoreQuery::LeftDegreeHistogram { max_degree: 16 },
                ]),
        )
        .disclose(&graph, &hierarchy, &mut rng)
        .unwrap();
        ReleaseArtifact::seal("dblp", 1, hierarchy, release).unwrap()
    }

    #[test]
    fn gather_matches_scan_estimator_bitwise() {
        let artifact = artifact();
        let indexed = IndexedRelease::new(artifact.clone()).unwrap();
        for level in 0..artifact.level_count() {
            let scan = SubsetCountEstimator::new(
                artifact.release().level(level).unwrap(),
                artifact.hierarchy().level(level).unwrap(),
            )
            .unwrap();
            for subset in [
                vec![0u32],
                vec![0, 1, 2, 3, 4],
                (0..40).collect::<Vec<u32>>(),
                vec![7, 3, 19, 2],
            ] {
                for side in [Side::Left, Side::Right] {
                    let a = scan.estimate(side, &subset).unwrap();
                    let b = indexed.estimate(level, side, &subset).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "level {level} {side} {subset:?}");
                }
            }
        }
    }

    #[test]
    fn errors_mirror_scan_estimator() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        let n = indexed.artifact().manifest().left_nodes;
        assert!(matches!(
            indexed.estimate(1, Side::Left, &[n + 2]).unwrap_err(),
            ServeError::Core(CoreError::SubsetNodeOutOfRange { node, .. }) if node == n + 2
        ));
        assert!(matches!(
            indexed.estimate(1, Side::Left, &[4, 4]).unwrap_err(),
            ServeError::Core(CoreError::DuplicateSubsetNode { node: 4, .. })
        ));
        assert!(matches!(
            indexed.estimate(99, Side::Left, &[0]).unwrap_err(),
            ServeError::Core(CoreError::LevelOutOfRange { level: 99, .. })
        ));
    }

    #[test]
    fn level_without_per_group_counts_is_unindexed() {
        let mut rng = StdRng::seed_from_u64(81);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(2).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release =
            MultiLevelDiscloser::new(DisclosureConfig::count_only(0.5, 1e-6).unwrap())
                .disclose(&graph, &hierarchy, &mut rng)
                .unwrap();
        let artifact = ReleaseArtifact::seal("dblp", 1, hierarchy, release).unwrap();
        let indexed = IndexedRelease::new(artifact).unwrap();
        assert!(!indexed.is_indexed(0));
        assert!(matches!(
            indexed.estimate(0, Side::Left, &[0]).unwrap_err(),
            ServeError::LevelNotIndexed { level: 0 }
        ));
        assert!(matches!(
            indexed.group_mass(0, Side::Left, 0).unwrap_err(),
            ServeError::LevelNotIndexed { level: 0 }
        ));
        assert!(matches!(
            indexed.side_total(0, Side::Right).unwrap_err(),
            ServeError::LevelNotIndexed { level: 0 }
        ));
        // No histogram was released either: a typed refusal, not a panic.
        assert!(matches!(
            indexed.degree_histogram(0, Side::Left).unwrap_err(),
            ServeError::StatisticNotReleased { level: 0, .. }
        ));
    }

    #[test]
    fn batch_matches_sequential() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        let subsets: Vec<Vec<u32>> = (0..30u32).map(|k| (0..=k).collect()).collect();
        let batch = indexed.estimate_batch(1, Side::Left, &subsets).unwrap();
        for (subset, &got) in subsets.iter().zip(&batch) {
            assert_eq!(indexed.estimate(1, Side::Left, subset).unwrap(), got);
        }
    }

    #[test]
    fn typed_variants_match_scan_baselines_bitwise() {
        let artifact = artifact();
        let indexed = IndexedRelease::new(artifact.clone()).unwrap();
        for level in 0..artifact.level_count() {
            let rel = artifact.release().level(level).unwrap();
            let lvl = artifact.hierarchy().level(level).unwrap();
            for side in [Side::Left, Side::Right] {
                // Group masses.
                let groups = match side {
                    Side::Left => lvl.left().block_count(),
                    Side::Right => lvl.right().block_count(),
                };
                for group in 0..groups.min(8) {
                    let a = scan_group_mass(rel, lvl, side, group).unwrap();
                    let b = indexed.group_mass(level, side, group).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "level {level} {side} g{group}");
                }
                // Side totals.
                let a = scan_side_total(rel, lvl, side).unwrap();
                let b = indexed.side_total(level, side).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "level {level} {side} total");
            }
            // Histograms: identical bins, and repeated serves share one
            // allocation.
            let a = scan_degree_histogram(rel, Side::Left).unwrap();
            let b = indexed.degree_histogram(level, Side::Left).unwrap();
            assert_eq!(a, &b[..]);
            let again = indexed.degree_histogram(level, Side::Left).unwrap();
            assert!(Arc::ptr_eq(&b, &again), "histogram must be served by reference");
        }
    }

    #[test]
    fn typed_dispatch_routes_every_variant() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        let level = 1;
        let subset = crate::SubsetQuery {
            side: Side::Left,
            nodes: vec![0, 1, 2],
        };
        assert_eq!(
            indexed
                .answer(level, &Query::SubsetCount(subset.clone()))
                .unwrap()
                .scalar()
                .unwrap(),
            indexed.estimate(level, Side::Left, &subset.nodes).unwrap()
        );
        assert_eq!(
            indexed
                .answer(level, &Query::GroupMass { side: Side::Right, group: 1 })
                .unwrap()
                .scalar()
                .unwrap(),
            indexed.group_mass(level, Side::Right, 1).unwrap()
        );
        assert_eq!(
            indexed
                .answer(level, &Query::SideTotal { side: Side::Left })
                .unwrap()
                .scalar()
                .unwrap(),
            indexed.side_total(level, Side::Left).unwrap()
        );
        let hist = indexed
            .answer(level, &Query::DegreeHistogram { side: Side::Left })
            .unwrap();
        assert_eq!(
            hist.histogram().unwrap(),
            &indexed.degree_histogram(level, Side::Left).unwrap()[..]
        );
        // Typed batch equals the sequential dispatch loop.
        let queries = vec![
            Query::SubsetCount(subset),
            Query::GroupMass { side: Side::Left, group: 0 },
            Query::DegreeHistogram { side: Side::Left },
            Query::SideTotal { side: Side::Right },
        ];
        let batch = indexed.answer_batch(level, &queries).unwrap();
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(&indexed.answer(level, q).unwrap(), got);
        }
    }

    #[test]
    fn group_mass_rejects_out_of_range_group() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        let err = indexed.group_mass(2, Side::Left, 10_000).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Core(CoreError::GroupOutOfRange {
                side: Side::Left,
                group: 10_000,
                ..
            })
        ));
    }

    #[test]
    fn right_histogram_is_a_typed_refusal() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        assert!(matches!(
            indexed.degree_histogram(1, Side::Right).unwrap_err(),
            ServeError::StatisticNotReleased { level: 1, .. }
        ));
        // Level precedence beats side precedence, like the scan path
        // composed with `release.level(i)`.
        assert!(matches!(
            indexed.degree_histogram(99, Side::Right).unwrap_err(),
            ServeError::Core(CoreError::LevelOutOfRange { level: 99, .. })
        ));
    }

    #[test]
    fn side_total_is_bit_identical_to_estimator() {
        let artifact = artifact();
        let indexed = IndexedRelease::new(artifact.clone()).unwrap();
        let scan = SubsetCountEstimator::new(
            artifact.release().level(2).unwrap(),
            artifact.hierarchy().level(2).unwrap(),
        )
        .unwrap();
        for side in [Side::Left, Side::Right] {
            let a = indexed.side_total(2, side).unwrap();
            let b = scan.estimate_side_total(side);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
