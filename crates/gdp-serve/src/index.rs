//! Query-optimized view of a sealed release artifact.

use rayon::prelude::*;

use gdp_core::{AccessPolicy, CoreError, Query, ReleaseArtifact};
use gdp_graph::Side;

use crate::error::ServeError;
use crate::Result;

/// One side of one indexed level: the node→group table plus the
/// per-group noisy mass pre-divided by the group size.
#[derive(Debug, Clone)]
struct IndexedSide {
    /// `group_of[node]` — a copy of the partition's block assignment,
    /// laid out for the gather loop.
    group_of: Vec<u32>,
    /// `premass[g] = noisy(g) / |g|` — the exact float the scan-path
    /// estimator computes per touched group, hoisted to build time.
    premass: Vec<f64>,
}

impl IndexedSide {
    fn node_count(&self) -> u32 {
        self.group_of.len() as u32
    }
}

/// One hierarchy level with a per-group release, indexed for `O(|S|)`
/// subset gathers.
#[derive(Debug, Clone)]
struct IndexedLevel {
    left: IndexedSide,
    right: IndexedSide,
}

/// A [`ReleaseArtifact`] plus the precomputed tables that turn a
/// subset-count estimate into a pure gather.
///
/// For every level that released [`Query::PerGroupCounts`], the index
/// holds each side's node→group table and per-group noisy mass
/// pre-divided by `|g|`. A subset estimate then visits exactly the
/// queried nodes — an `O(|S|)` gather, one node→group lookup and one
/// premass load per queried node — instead of scanning all groups
/// behind a freshly built estimator. The estimate is **bit-identical**
/// to [`gdp_core::answering::SubsetCountEstimator::estimate`] on every
/// input, errors included; property tests pin that equivalence.
///
/// Everything here is post-processing of an already-released bundle:
/// building the index, and answering any number of queries from it,
/// consumes no privacy budget.
#[derive(Debug, Clone)]
pub struct IndexedRelease {
    artifact: ReleaseArtifact,
    policy: AccessPolicy,
    levels: Vec<Option<IndexedLevel>>,
}

impl IndexedRelease {
    /// Indexes an artifact. Levels without a per-group release are kept
    /// (their metadata stays served from the artifact) but cannot answer
    /// subset queries.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] when a level's per-group vector
    /// disagrees with its hierarchy level's group count (a malformed
    /// artifact that slipped past sealing cannot be indexed).
    pub fn new(artifact: ReleaseArtifact) -> Result<Self> {
        let policy = AccessPolicy::new(artifact.level_count()).map_err(ServeError::Core)?;
        let mut levels = Vec::with_capacity(artifact.level_count());
        for (level_release, level) in artifact
            .release()
            .levels()
            .iter()
            .zip(artifact.hierarchy().levels())
        {
            let Some(per_group) = level_release.query(Query::PerGroupCounts) else {
                levels.push(None);
                continue;
            };
            let lb = level.left().block_count() as usize;
            let rb = level.right().block_count() as usize;
            if per_group.noisy_values.len() != lb + rb {
                return Err(ServeError::Core(CoreError::InvalidConfig(format!(
                    "level {}: per-group vector length {} does not match group count {}",
                    level_release.level,
                    per_group.noisy_values.len(),
                    lb + rb
                ))));
            }
            let index_side = |partition: &gdp_graph::SidePartition, noisy: &[f64]| {
                let sizes = partition.block_sizes();
                IndexedSide {
                    group_of: partition.assignment().to_vec(),
                    premass: noisy
                        .iter()
                        .zip(&sizes)
                        .map(|(&mass, &size)| mass / size as f64)
                        .collect(),
                }
            };
            levels.push(Some(IndexedLevel {
                left: index_side(level.left(), &per_group.noisy_values[..lb]),
                right: index_side(level.right(), &per_group.noisy_values[lb..]),
            }));
        }
        Ok(Self {
            artifact,
            policy,
            levels,
        })
    }

    /// The underlying sealed artifact.
    pub fn artifact(&self) -> &ReleaseArtifact {
        &self.artifact
    }

    /// The monotone access policy over this artifact's levels.
    pub fn policy(&self) -> &AccessPolicy {
        &self.policy
    }

    /// Number of hierarchy levels in the artifact.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Whether `level` can answer subset queries (released per-group
    /// counts).
    pub fn is_indexed(&self, level: usize) -> bool {
        matches!(self.levels.get(level), Some(Some(_)))
    }

    fn indexed_level(&self, level: usize) -> Result<&IndexedLevel> {
        match self.levels.get(level) {
            None => Err(ServeError::Core(CoreError::LevelOutOfRange {
                level,
                level_count: self.levels.len(),
            })),
            Some(None) => Err(ServeError::LevelNotIndexed { level }),
            Some(Some(indexed)) => Ok(indexed),
        }
    }

    /// Estimates the association count incident to `nodes` on `side`
    /// from `level`'s noisy per-group release — the `O(|S|)` gather.
    ///
    /// Semantics, float-for-float and error-for-error, are those of
    /// [`gdp_core::answering::SubsetCountEstimator::estimate`]: nodes
    /// must be in range and free of duplicates (first offender in
    /// subset order wins), and terms accumulate per node in subset
    /// order as `premass(g(v))`.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Core`] with [`CoreError::LevelOutOfRange`] /
    ///   [`CoreError::SubsetNodeOutOfRange`] /
    ///   [`CoreError::DuplicateSubsetNode`].
    /// * [`ServeError::LevelNotIndexed`] when the level released no
    ///   per-group counts.
    pub fn estimate(&self, level: usize, side: Side, nodes: &[u32]) -> Result<f64> {
        let indexed = self.indexed_level(level)?;
        let indexed_side = match side {
            Side::Left => &indexed.left,
            Side::Right => &indexed.right,
        };
        let n = indexed_side.node_count();
        // Hot path: a pure per-node gather in subset order — one
        // node→group lookup and one premass load per queried node, the
        // exact summation the scan path performs. Duplicate detection
        // costs no hashing: a zero-initialized stack bitmap over the
        // node id space for sides up to 65 536 nodes (8 KB on the
        // stack, L1-resident — measured negligible next to the
        // gather), a sorted scratch copy of the subset beyond that.
        const BITMAP_WORDS: usize = 1024; // 65 536 node ids
        let words = (n as usize).div_ceil(64);
        let mut defective = false;
        let mut total = 0.0;
        if words <= BITMAP_WORDS {
            let mut bitmap = [0u64; BITMAP_WORDS];
            for &node in nodes {
                if node >= n {
                    defective = true;
                    break;
                }
                let (word, bit) = (node as usize / 64, 1u64 << (node % 64));
                defective |= bitmap[word] & bit != 0;
                bitmap[word] |= bit;
                total += indexed_side.premass[indexed_side.group_of[node as usize] as usize];
            }
        } else {
            for &node in nodes {
                if node >= n {
                    defective = true;
                    break;
                }
                total += indexed_side.premass[indexed_side.group_of[node as usize] as usize];
            }
            if !defective {
                let mut sorted = nodes.to_vec();
                sorted.sort_unstable();
                defective = sorted.windows(2).any(|w| w[0] == w[1]);
            }
        }
        if defective {
            // Cold path: the canonical validation walk — shared with
            // the scan estimator — reports the error, so precedence
            // (first offender in subset order) is identical to the
            // baseline's by construction.
            let err = gdp_core::answering::validate_subset(side, nodes, n)
                .expect_err("caller detected a defect in the subset");
            return Err(ServeError::Core(err));
        }
        Ok(total)
    }

    /// Answers a batch of subset queries, fanning out over rayon.
    /// Answering is RNG-free pure post-processing, so the output is
    /// identical to a sequential loop at any thread count.
    ///
    /// # Errors
    ///
    /// The same errors as [`IndexedRelease::estimate`] (which failing
    /// subset's error surfaces is unspecified).
    pub fn estimate_batch(
        &self,
        level: usize,
        side: Side,
        subsets: &[Vec<u32>],
    ) -> Result<Vec<f64>> {
        subsets
            .par_iter()
            .map(|nodes| self.estimate(level, side, nodes))
            .collect()
    }

    /// The whole-side estimate at a level — the sum of every group's
    /// noisy count, for consistency checks against released totals.
    ///
    /// # Errors
    ///
    /// Same level errors as [`IndexedRelease::estimate`].
    pub fn side_total(&self, level: usize, side: Side) -> Result<f64> {
        let indexed = self.indexed_level(level)?;
        let (indexed_side, sizes_source) = match side {
            Side::Left => (
                &indexed.left,
                self.artifact.hierarchy().level(level).map_err(ServeError::Core)?.left(),
            ),
            Side::Right => (
                &indexed.right,
                self.artifact
                    .hierarchy()
                    .level(level)
                    .map_err(ServeError::Core)?
                    .right(),
            ),
        };
        let sizes = sizes_source.block_sizes();
        Ok(indexed_side
            .premass
            .iter()
            .zip(&sizes)
            .map(|(&premass, &size)| premass * size as f64)
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::answering::SubsetCountEstimator;
    use gdp_core::{
        DisclosureConfig, MultiLevelDiscloser, SpecializationConfig, Specializer,
    };
    use gdp_datagen::{DblpConfig, DblpGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn artifact() -> ReleaseArtifact {
        let mut rng = StdRng::seed_from_u64(80);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(3).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.9, 1e-6)
                .unwrap()
                .with_queries(vec![Query::TotalAssociations, Query::PerGroupCounts]),
        )
        .disclose(&graph, &hierarchy, &mut rng)
        .unwrap();
        ReleaseArtifact::seal("dblp", 1, hierarchy, release).unwrap()
    }

    #[test]
    fn gather_matches_scan_estimator_bitwise() {
        let artifact = artifact();
        let indexed = IndexedRelease::new(artifact.clone()).unwrap();
        for level in 0..artifact.level_count() {
            let scan = SubsetCountEstimator::new(
                artifact.release().level(level).unwrap(),
                artifact.hierarchy().level(level).unwrap(),
            )
            .unwrap();
            for subset in [
                vec![0u32],
                vec![0, 1, 2, 3, 4],
                (0..40).collect::<Vec<u32>>(),
                vec![7, 3, 19, 2],
            ] {
                for side in [Side::Left, Side::Right] {
                    let a = scan.estimate(side, &subset).unwrap();
                    let b = indexed.estimate(level, side, &subset).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "level {level} {side} {subset:?}");
                }
            }
        }
    }

    #[test]
    fn errors_mirror_scan_estimator() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        let n = indexed.artifact().manifest().left_nodes;
        assert!(matches!(
            indexed.estimate(1, Side::Left, &[n + 2]).unwrap_err(),
            ServeError::Core(CoreError::SubsetNodeOutOfRange { node, .. }) if node == n + 2
        ));
        assert!(matches!(
            indexed.estimate(1, Side::Left, &[4, 4]).unwrap_err(),
            ServeError::Core(CoreError::DuplicateSubsetNode { node: 4, .. })
        ));
        assert!(matches!(
            indexed.estimate(99, Side::Left, &[0]).unwrap_err(),
            ServeError::Core(CoreError::LevelOutOfRange { level: 99, .. })
        ));
    }

    #[test]
    fn level_without_per_group_counts_is_unindexed() {
        let mut rng = StdRng::seed_from_u64(81);
        let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
        let hierarchy = Specializer::new(SpecializationConfig::median(2).unwrap())
            .specialize(&graph, &mut rng)
            .unwrap();
        let release =
            MultiLevelDiscloser::new(DisclosureConfig::count_only(0.5, 1e-6).unwrap())
                .disclose(&graph, &hierarchy, &mut rng)
                .unwrap();
        let artifact = ReleaseArtifact::seal("dblp", 1, hierarchy, release).unwrap();
        let indexed = IndexedRelease::new(artifact).unwrap();
        assert!(!indexed.is_indexed(0));
        assert!(matches!(
            indexed.estimate(0, Side::Left, &[0]).unwrap_err(),
            ServeError::LevelNotIndexed { level: 0 }
        ));
    }

    #[test]
    fn batch_matches_sequential() {
        let indexed = IndexedRelease::new(artifact()).unwrap();
        let subsets: Vec<Vec<u32>> = (0..30u32).map(|k| (0..=k).collect()).collect();
        let batch = indexed.estimate_batch(1, Side::Left, &subsets).unwrap();
        for (subset, &got) in subsets.iter().zip(&batch) {
            assert_eq!(indexed.estimate(1, Side::Left, subset).unwrap(), got);
        }
    }

    #[test]
    fn side_total_consistent_with_premass() {
        let artifact = artifact();
        let indexed = IndexedRelease::new(artifact.clone()).unwrap();
        let scan = SubsetCountEstimator::new(
            artifact.release().level(2).unwrap(),
            artifact.hierarchy().level(2).unwrap(),
        )
        .unwrap();
        let a = indexed.side_total(2, Side::Left).unwrap();
        let b = scan.estimate_side_total(Side::Left);
        assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} vs {b}");
    }
}
