//! The raw subset-gather kernels behind [`IndexedRelease::estimate`].
//!
//! Exposed as a public module so the criterion pairs in `gdp-bench` and
//! the equivalence property suites can drive the lane path and its
//! pinned scalar fallback directly, without an artifact in the loop.
//!
//! # Structure of the lane path
//!
//! The scalar form ([`gather_subset_scalar`]) interleaves the bounds
//! check, the duplicate-bitmap update and the dependent double gather
//! in one loop body — every iteration carries two branches and the
//! bitmap read-modify-write, none of it vectorizable. The lane path
//! ([`gather_subset`]) hoists validation out of the accumulation loop
//! entirely:
//!
//! 1. **Sweep** (the private `subset_defective`): one chunked pass over
//!    the subset — a branchless [`U32x8`] bound mask per
//!    chunk (a single well-predicted branch per 8 nodes), then the
//!    duplicate-bitmap bit sets, against a **reusable thread-local
//!    bitmap** cleared lazily (only the words the subset touched),
//!    instead of zero-initializing an 8 KiB stack array per call or —
//!    on sides past 65 536 nodes — allocating and sorting a copy of
//!    the whole subset.
//! 2. **Gather** ([`gdp_lanes::gather_map_sum`]): a check-free chunked
//!    double gather whose loads are lane-wise and independent, with
//!    **one ordered horizontal fold per chunk** — the exact add
//!    sequence of the scalar loop, so the result is bit-identical.
//!
//! Summation order is part of the released-answer contract (an
//! artifact sealed yesterday must serve the same bits tomorrow), which
//! is why the reduction is ordered rather than lane-parallel; the
//! speedup comes from removing per-element branching and bitmap
//! traffic from the float chain, not from reordering it.
//!
//! [`IndexedRelease::estimate`]: crate::IndexedRelease::estimate

use std::cell::RefCell;

use gdp_graph::lanes;
use gdp_lanes::{U32x8, U32_LANES};

/// Stack-bitmap capacity of the scalar fallback: 1024 words = 65 536
/// node ids, the boundary past which the scalar path falls back to
/// sort-based duplicate detection.
pub const SCALAR_BITMAP_WORDS: usize = 1024;

thread_local! {
    /// The reusable duplicate-detection bitmap. Sized to the largest
    /// side this thread has gathered against, zero between calls by
    /// the lazy-clear invariant: every call clears exactly the words
    /// its subset set before returning.
    static DUP_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The lane-path subset gather: `Σ premass[group_of[v]]` over `v` in
/// subset order, or `None` when the subset is defective (a node out of
/// range, or a duplicate) — the caller re-walks defective subsets
/// canonically to produce the typed error, so this path never decides
/// error precedence.
///
/// Bit-identical to [`gather_subset_scalar`] on every input (pinned by
/// unit and property tests): validation is hoisted, the accumulation
/// order is not changed.
pub fn gather_subset(group_of: &[u32], premass: &[f64], nodes: &[u32]) -> Option<f64> {
    if subset_defective(nodes, group_of.len() as u32) {
        return None;
    }
    Some(lanes::gather_map_sum(nodes, group_of, premass))
}

/// One chunked sweep deciding defectiveness: any node `>= n` or any
/// duplicate. Bits are set in the thread-local scratch bitmap and
/// cleared before returning.
fn subset_defective(nodes: &[u32], n: u32) -> bool {
    let words = (n as usize).div_ceil(64);
    DUP_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        if scratch.len() < words {
            scratch.resize(words, 0);
        }
        let (defective, marked) = sweep(nodes, n, &mut scratch);
        // Lazy clear: every marked node is in range, and all set bits
        // live in these words, so this restores the all-zero invariant
        // in O(|S|) regardless of the side's size.
        for &node in marked {
            scratch[node as usize / 64] = 0;
        }
        defective
    })
}

/// The sweep body. Returns the defect flag and the prefix of `nodes`
/// whose bits were set (defect-free chunks plus, on a duplicate, the
/// chunk that contained it; nothing from a chunk with an out-of-range
/// node — the bound mask runs before any bit is touched).
fn sweep<'a>(nodes: &'a [u32], n: u32, bitmap: &mut [u64]) -> (bool, &'a [u32]) {
    let mut marked = 0usize;
    let mut chunks = nodes.chunks_exact(U32_LANES);
    for chunk in chunks.by_ref() {
        // Branchless lane compare, one branch per chunk — and it must
        // run first: an out-of-range id would index past the bitmap.
        if U32x8::load(chunk).any_ge(n) {
            return (true, &nodes[..marked]);
        }
        let mut dup = false;
        for &node in chunk {
            let (word, bit) = (node as usize / 64, 1u64 << (node % 64));
            dup |= bitmap[word] & bit != 0;
            bitmap[word] |= bit;
        }
        marked += U32_LANES;
        if dup {
            return (true, &nodes[..marked]);
        }
    }
    for &node in chunks.remainder() {
        if node >= n {
            return (true, &nodes[..marked]);
        }
        let (word, bit) = (node as usize / 64, 1u64 << (node % 64));
        if bitmap[word] & bit != 0 {
            return (true, &nodes[..marked + 1]);
        }
        bitmap[word] |= bit;
        marked += 1;
    }
    (false, &nodes[..marked])
}

/// The pre-lane scalar form, kept verbatim as the **pinned fallback**:
/// per-node bounds branch, interleaved bitmap update (a
/// zero-initialized 8 KiB stack bitmap for sides up to 65 536 nodes),
/// and — beyond that — duplicate detection by allocating and sorting a
/// copy of the subset on every call. The equivalence baseline and the
/// criterion comparison point for [`gather_subset`].
pub fn gather_subset_scalar(group_of: &[u32], premass: &[f64], nodes: &[u32]) -> Option<f64> {
    let n = group_of.len() as u32;
    let words = (n as usize).div_ceil(64);
    let mut defective = false;
    let mut total = 0.0;
    if words <= SCALAR_BITMAP_WORDS {
        let mut bitmap = [0u64; SCALAR_BITMAP_WORDS];
        for &node in nodes {
            if node >= n {
                defective = true;
                break;
            }
            let (word, bit) = (node as usize / 64, 1u64 << (node % 64));
            defective |= bitmap[word] & bit != 0;
            bitmap[word] |= bit;
            total += premass[group_of[node as usize] as usize];
        }
    } else {
        for &node in nodes {
            if node >= n {
                defective = true;
                break;
            }
            total += premass[group_of[node as usize] as usize];
        }
        if !defective {
            let mut sorted = nodes.to_vec();
            sorted.sort_unstable();
            defective = sorted.windows(2).any(|w| w[0] == w[1]);
        }
    }
    if defective {
        None
    } else {
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A side of `n` nodes with `groups` groups and sign-mixed premass
    /// values (including a negative zero and a subnormal so ordered
    /// summation differences cannot hide).
    fn side(n: u32, groups: u32) -> (Vec<u32>, Vec<f64>) {
        let group_of: Vec<u32> = (0..n).map(|v| (v.wrapping_mul(2_654_435_761)) % groups).collect();
        let premass: Vec<f64> = (0..groups)
            .map(|g| match g % 5 {
                0 => -0.0,
                1 => f64::MIN_POSITIVE / 2.0,
                2 => (g as f64) * 1e12,
                3 => -(g as f64) * 1e-9,
                _ => g as f64 + 0.125,
            })
            .collect();
        (group_of, premass)
    }

    fn assert_paths_agree(group_of: &[u32], premass: &[f64], nodes: &[u32]) {
        let lane = gather_subset(group_of, premass, nodes);
        let scalar = gather_subset_scalar(group_of, premass, nodes);
        assert_eq!(
            lane.map(f64::to_bits),
            scalar.map(f64::to_bits),
            "lane/scalar divergence on subset {nodes:?}"
        );
    }

    /// The 65 536-node scalar boundary, one node either side of it and
    /// on it: the lane path must agree bitwise with whichever duplicate
    /// detector the scalar fallback picks — the ISSUE-9 regression for
    /// the large-side sort path.
    #[test]
    fn boundary_65536_both_sides() {
        for n in [65_535u32, 65_536, 65_537] {
            let (group_of, premass) = side(n, 73);
            // Clean subsets across the whole range, remainder lengths included.
            let clean: Vec<u32> = (0..80).map(|i| i * (n / 80)).collect();
            assert_paths_agree(&group_of, &premass, &clean);
            assert_paths_agree(&group_of, &premass, &clean[..U32_LANES - 1]);
            assert_paths_agree(&group_of, &premass, &[n - 1]);
            // Duplicates, early and late.
            let mut dup = clean.clone();
            dup.push(clean[3]);
            assert_paths_agree(&group_of, &premass, &dup);
            assert_paths_agree(&group_of, &premass, &[0, 0]);
            // Out of range, alone and after valid prefixes.
            assert_paths_agree(&group_of, &premass, &[n]);
            let mut oob = clean.clone();
            oob.push(n + 17);
            assert_paths_agree(&group_of, &premass, &oob);
            // Empty subset.
            assert_paths_agree(&group_of, &premass, &[]);
        }
    }

    /// The scratch bitmap must not leak state between calls on the same
    /// thread: a duplicate (or an early out-of-range exit) in one call
    /// must leave the next call's verdicts untouched.
    #[test]
    fn scratch_bitmap_clears_between_calls() {
        let (group_of, premass) = side(200_000, 31);
        let probe: Vec<u32> = (0..64u32).map(|i| i * 3000).collect();
        let baseline = gather_subset(&group_of, &premass, &probe).expect("clean subset");
        // A duplicate-heavy call, an out-of-range call (early exit after
        // marking a prefix), then the probe again — same bits.
        let mut dup = probe.clone();
        dup.extend_from_slice(&probe);
        assert_eq!(gather_subset(&group_of, &premass, &dup), None);
        let mut oob = probe.clone();
        oob.push(400_000);
        assert_eq!(gather_subset(&group_of, &premass, &oob), None);
        let again = gather_subset(&group_of, &premass, &probe).expect("still clean");
        assert_eq!(baseline.to_bits(), again.to_bits());
        // And a subset that *reuses* ids from the defective calls is
        // still clean — the bits really were cleared, not masked.
        assert!(gather_subset(&group_of, &premass, &probe[..7]).is_some());
    }

    /// Growing the scratch (first large side seen on the thread) must
    /// zero-fill the new words.
    #[test]
    fn scratch_bitmap_grows_zeroed() {
        let (small_g, small_p) = side(70_000, 11);
        let (big_g, big_p) = side(900_000, 11);
        let nodes: Vec<u32> = (0..33u32).map(|i| 60_000 + i * 17).collect();
        assert_paths_agree(&small_g, &small_p, &nodes);
        let far: Vec<u32> = (0..33u32).map(|i| 800_000 + i * 13).collect();
        assert_paths_agree(&big_g, &big_p, &far);
        assert_paths_agree(&big_g, &big_p, &nodes);
    }

    #[test]
    fn chunk_granular_oob_matches_scalar_verdict() {
        // Out-of-range ids at every position within a chunk: the lane
        // sweep stops at chunk granularity, the scalar loop per node —
        // both must report defective, and clean calls must still work
        // afterwards.
        let (group_of, premass) = side(1000, 7);
        for pos in 0..=2 * U32_LANES {
            let mut nodes: Vec<u32> = (0..=2 * U32_LANES as u32).collect();
            nodes[pos] = 5000;
            assert_paths_agree(&group_of, &premass, &nodes);
        }
        assert_paths_agree(&group_of, &premass, &[1, 2, 3]);
    }

    #[test]
    fn empty_side_rejects_everything() {
        let (group_of, premass): (Vec<u32>, Vec<f64>) = (Vec::new(), Vec::new());
        assert_eq!(gather_subset(&group_of, &premass, &[0]), None);
        assert_eq!(gather_subset(&group_of, &premass, &[]), Some(0.0));
        assert_eq!(gather_subset_scalar(&group_of, &premass, &[]), Some(0.0));
    }
}
