use std::error::Error;
use std::fmt;

use gdp_core::CoreError;
use gdp_graph::GraphError;

/// Errors produced by the serving subsystem.
#[derive(Debug)]
pub enum ServeError {
    /// A core-pipeline error (access denial, malformed subset, level
    /// out of range, artifact validation, …).
    Core(CoreError),
    /// No artifact registered under the requested `(dataset, epoch)`.
    UnknownRelease {
        /// Requested dataset key.
        dataset: String,
        /// Requested epoch.
        epoch: u64,
    },
    /// An artifact for this `(dataset, epoch)` is already registered —
    /// published releases are immutable, so re-inserting a key is
    /// almost certainly a deployment bug rather than an update. The
    /// classic shape: one epoch present as both `dblp-e1.json` and
    /// `dblp-e1.gda` in the same directory.
    DuplicateRelease {
        /// Conflicting dataset key.
        dataset: String,
        /// Conflicting epoch.
        epoch: u64,
        /// The on-disk files involved, when known: first the file
        /// already backing the registered release, then the colliding
        /// one. Empty for purely programmatic double-inserts.
        paths: Vec<String>,
    },
    /// The artifact does not carry per-group counts at this level, so
    /// subset-count, group-mass and side-total queries cannot be
    /// answered from it.
    LevelNotIndexed {
        /// The level that lacks a per-group release.
        level: usize,
    },
    /// The artifact released no such statistic at this level (e.g. a
    /// degree histogram that was never disclosed, or the right side of
    /// a left-only histogram release).
    StatisticNotReleased {
        /// The level that lacks the statistic.
        level: usize,
        /// Human-readable name of the missing statistic.
        statistic: String,
    },
    /// A scanned artifact file carries a schema version this build does
    /// not read — refused with file context instead of misinterpreting
    /// the payload.
    SchemaVersion {
        /// Path of the offending file.
        path: String,
        /// The version found in its manifest.
        found: u32,
        /// The version this build reads.
        supported: u32,
    },
    /// A directory scan found no artifact documents — almost certainly
    /// a wrong path rather than an intentionally empty store.
    EmptyDirectory {
        /// The scanned directory.
        path: String,
    },
    /// A subset-query workload file could not be parsed.
    Workload {
        /// 1-based line number of the failure.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A serving-path invariant was violated (e.g. a subset count that
    /// did not resolve to a scalar). Surfacing this as a typed error
    /// instead of panicking keeps a malformed request from ever killing
    /// a worker thread; seeing one is a bug in the serving layer, not
    /// in the request.
    Internal(
        /// What invariant broke.
        String,
    ),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Core(e) => write!(f, "{e}"),
            Self::UnknownRelease { dataset, epoch } => {
                write!(f, "no release registered for dataset `{dataset}` epoch {epoch}")
            }
            Self::DuplicateRelease {
                dataset,
                epoch,
                paths,
            } => {
                write!(
                    f,
                    "a release for dataset `{dataset}` epoch {epoch} is already registered"
                )?;
                if !paths.is_empty() {
                    write!(f, " ({})", paths.join(" vs "))?;
                }
                Ok(())
            }
            Self::LevelNotIndexed { level } => write!(
                f,
                "level {level} released no per-group counts; subset, group-mass and \
                 side-total queries need them"
            ),
            Self::StatisticNotReleased { level, statistic } => {
                write!(f, "level {level} released no {statistic}")
            }
            Self::SchemaVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path}: artifact schema version {found} unsupported \
                 (this build reads version {supported})"
            ),
            Self::EmptyDirectory { path } => {
                write!(f, "directory {path} holds no artifact files (.json/.gda)")
            }
            Self::Workload { line, message } => {
                write!(f, "workload parse error at line {line}: {message}")
            }
            Self::Internal(message) => {
                write!(f, "internal serving invariant violated: {message}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<GraphError> for ServeError {
    fn from(e: GraphError) -> Self {
        Self::Core(CoreError::Graph(e))
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Core(CoreError::Graph(GraphError::Io(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::UnknownRelease {
            dataset: "dblp".to_string(),
            epoch: 7,
        };
        assert!(e.to_string().contains("dblp"));
        assert!(e.source().is_none());

        let e = ServeError::from(CoreError::Artifact("bad".to_string()));
        assert!(e.source().is_some());

        let e = ServeError::DuplicateRelease {
            dataset: "dblp".to_string(),
            epoch: 1,
            paths: vec!["s/dblp-e1.gda".to_string(), "s/dblp-e1.json".to_string()],
        };
        let text = e.to_string();
        assert!(text.contains("dblp-e1.gda"), "{text}");
        assert!(text.contains("dblp-e1.json"), "{text}");
        let e = ServeError::DuplicateRelease {
            dataset: "dblp".to_string(),
            epoch: 1,
            paths: Vec::new(),
        };
        assert!(!e.to_string().contains('('), "no empty path list rendered");

        let e = ServeError::LevelNotIndexed { level: 3 };
        assert!(e.to_string().contains('3'));

        let e = ServeError::StatisticNotReleased {
            level: 2,
            statistic: "right degree histogram".to_string(),
        };
        assert!(e.to_string().contains("right degree histogram"));

        let e = ServeError::SchemaVersion {
            path: "store/a.json".to_string(),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("a.json"));
        assert!(e.to_string().contains('9'));

        let e = ServeError::EmptyDirectory {
            path: "store".to_string(),
        };
        assert!(e.to_string().contains("no artifact"));

        let e = ServeError::Workload {
            line: 4,
            message: "bad side".to_string(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
