//! Store lifecycle vocabulary — the typed per-file outcomes a degraded
//! directory scan reports, and the retention policies GC enforces.
//!
//! The paper's deployment story is *recurring* disclosure: a publisher
//! re-releases a dataset every epoch, forever. That turns the artifact
//! directory into a long-lived, crash-exposed, operator-edited piece of
//! state, and the store's job is to keep serving through whatever it
//! finds there. [`FileOutcome`] is the complete taxonomy of what a scan
//! can decide about one directory entry; [`OpenReport`] aggregates a
//! scan; [`RetentionPolicy`] + [`GcReport`] cover the eviction half of
//! the lifecycle. All types serialize, so the CLI and the serving
//! frontend can surface them verbatim.

use serde::{Deserialize, Serialize};

/// Subdirectory (of a scanned artifact directory) that damaged files
/// are moved into instead of being deleted: torn atomic-publish debris,
/// documents that fail validation or checksum verification. Files in
/// quarantine keep their bytes for post-mortem inspection and are never
/// scanned as artifacts.
pub const QUARANTINE_DIR: &str = "quarantine";

/// What a degraded directory scan decided about one directory entry.
///
/// Paths are rendered (`Display`) rather than `PathBuf` so reports
/// serialize cleanly into CLI output, `/stats` and admin responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FileOutcome {
    /// The file held a valid artifact and is now registered.
    Loaded {
        /// Dataset key of the loaded artifact.
        dataset: String,
        /// Epoch key of the loaded artifact.
        epoch: u64,
        /// The file it was loaded from.
        path: String,
    },
    /// The file held a valid artifact whose `(dataset, epoch)` the
    /// store already serves — left in place, nothing replaced
    /// (published artifacts are immutable). A mixed-format directory
    /// (same epoch as `.json` and `.gda`) lands here in degraded
    /// scans: the first file in name order serves, the twin is
    /// reported with both paths.
    AlreadyRegistered {
        /// Dataset key of the duplicate.
        dataset: String,
        /// Epoch key of the duplicate.
        epoch: u64,
        /// The file holding the duplicate.
        path: String,
        /// The file already backing the registered release, when it
        /// was loaded from disk (`None` for programmatic inserts).
        existing: Option<String>,
    },
    /// A non-artifact directory entry (subdirectory, hidden file,
    /// editor backup, wrong extension) — skipped where a strict scan
    /// would have choked, left in place.
    Stray {
        /// The skipped entry.
        path: String,
        /// Why it was skipped.
        note: String,
    },
    /// A damaged artifact (torn write, checksum mismatch, foreign
    /// schema, malformed JSON) — moved into [`QUARANTINE_DIR`] so the
    /// next scan is clean while the bytes survive for inspection.
    Quarantined {
        /// Where the file was.
        path: String,
        /// Where it is now (inside the quarantine directory).
        moved_to: String,
        /// The typed error that condemned it, rendered.
        reason: String,
    },
    /// A registered release whose backing file disappeared from the
    /// directory (retention GC or operator deletion) — dropped from the
    /// store so consumers see a typed `UnknownRelease`, not stale data.
    Retired {
        /// Dataset key of the retired release.
        dataset: String,
        /// Epoch key of the retired release.
        epoch: u64,
        /// The path that no longer exists.
        path: String,
    },
}

/// Aggregate of one degraded directory scan
/// ([`ReleaseStore::open_dir_report`](crate::ReleaseStore::open_dir_report) /
/// [`ReleaseStore::merge_dir`](crate::ReleaseStore::merge_dir)): every
/// directory entry's [`FileOutcome`], in deterministic (name-sorted)
/// visit order, retirements last.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpenReport {
    /// Per-entry outcomes in visit order.
    pub outcomes: Vec<FileOutcome>,
}

impl OpenReport {
    fn count(&self, pred: impl Fn(&FileOutcome) -> bool) -> usize {
        self.outcomes.iter().filter(|o| pred(o)).count()
    }

    /// Number of artifacts newly registered by this scan.
    pub fn loaded(&self) -> usize {
        self.count(|o| matches!(o, FileOutcome::Loaded { .. }))
    }

    /// Number of files whose `(dataset, epoch)` was already served.
    pub fn already_registered(&self) -> usize {
        self.count(|o| matches!(o, FileOutcome::AlreadyRegistered { .. }))
    }

    /// Number of non-artifact entries skipped in place.
    pub fn strays(&self) -> usize {
        self.count(|o| matches!(o, FileOutcome::Stray { .. }))
    }

    /// Number of damaged files moved to quarantine.
    pub fn quarantined(&self) -> usize {
        self.count(|o| matches!(o, FileOutcome::Quarantined { .. }))
    }

    /// Number of releases dropped because their backing file vanished.
    pub fn retired(&self) -> usize {
        self.count(|o| matches!(o, FileOutcome::Retired { .. }))
    }

    /// One-line human summary, stable enough to log.
    pub fn summary(&self) -> String {
        format!(
            "{} loaded, {} already registered, {} stray, {} quarantined, {} retired",
            self.loaded(),
            self.already_registered(),
            self.strays(),
            self.quarantined(),
            self.retired()
        )
    }
}

/// Which epochs of a dataset survive a GC pass. Both knobs compose
/// (an epoch is evicted if *either* marks it); the newest epoch of a
/// dataset is **never** evicted, so GC only deletes fully-superseded
/// releases and a served dataset never becomes empty.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Keep at most this many newest epochs (`None` = unlimited).
    /// Clamped to at least 1: the newest epoch always survives.
    pub keep_last: Option<usize>,
    /// Evict epochs more than this many epoch-numbers older than the
    /// dataset's newest (`None` = no age limit). Ages are measured in
    /// epoch units — the publisher's own clock — not wall time, so GC
    /// stays deterministic and testable.
    pub max_epoch_age: Option<u64>,
}

impl RetentionPolicy {
    /// Keep everything (the identity policy — `gc` becomes a no-op).
    pub fn keep_all() -> Self {
        Self::default()
    }

    /// Keep only the `n` newest epochs per dataset (`n` is clamped to
    /// at least 1).
    pub fn keep_last(n: usize) -> Self {
        Self {
            keep_last: Some(n.max(1)),
            max_epoch_age: None,
        }
    }

    /// Additionally evict epochs whose distance from the newest epoch
    /// exceeds `age` (a TTL counted in epoch units).
    pub fn with_max_epoch_age(mut self, age: u64) -> Self {
        self.max_epoch_age = Some(age);
        self
    }

    /// The epochs this policy evicts from `epochs` (any order,
    /// duplicates tolerated), ascending. The newest epoch is never in
    /// the plan.
    pub fn evict_plan(&self, epochs: &[u64]) -> Vec<u64> {
        let mut sorted: Vec<u64> = epochs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let Some(&newest) = sorted.last() else {
            return Vec::new();
        };
        let keep = self.keep_last.map(|n| n.max(1));
        sorted
            .iter()
            .copied()
            .filter(|&epoch| {
                if epoch == newest {
                    return false;
                }
                // Rank 0 = newest; an epoch survives keep_last(n) only
                // while its rank is below n.
                let rank = sorted.iter().filter(|&&e| e > epoch).count();
                let too_many = keep.is_some_and(|n| rank >= n);
                let too_old = self.max_epoch_age.is_some_and(|age| newest - epoch > age);
                too_many || too_old
            })
            .collect()
    }
}

/// One evicted release in a [`GcReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcEviction {
    /// Dataset key of the evicted release.
    pub dataset: String,
    /// Epoch key of the evicted release.
    pub epoch: u64,
    /// The backing file, if the release was loaded from (or saved to)
    /// disk; `None` for memory-only entries.
    pub path: Option<String>,
    /// Whether the backing file was durably deleted (vacuously `true`
    /// for memory-only entries).
    pub deleted: bool,
    /// The rendered deletion error, when `deleted` is `false`.
    pub error: Option<String>,
}

/// Aggregate of one [`ReleaseStore::gc`](crate::ReleaseStore::gc)
/// pass: every eviction, with per-file deletion outcomes. Deletion
/// failures are recorded, not raised — GC keeps going so one
/// undeletable file cannot pin a disk full of superseded epochs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GcReport {
    /// Evictions in `(dataset, epoch)` order.
    pub evictions: Vec<GcEviction>,
}

impl GcReport {
    /// Number of releases dropped from the store.
    pub fn evicted(&self) -> usize {
        self.evictions.len()
    }

    /// Number of evictions whose backing file failed to delete.
    pub fn failed_deletions(&self) -> usize {
        self.evictions.iter().filter(|e| !e.deleted).count()
    }

    /// One-line human summary, stable enough to log.
    pub fn summary(&self) -> String {
        format!(
            "{} evicted, {} failed deletions",
            self.evicted(),
            self.failed_deletions()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evict_plan_respects_keep_last_and_never_touches_newest() {
        let p = RetentionPolicy::keep_last(2);
        assert_eq!(p.evict_plan(&[1, 2, 3, 4, 5]), vec![1, 2, 3]);
        assert_eq!(p.evict_plan(&[5, 1, 3, 2, 4]), vec![1, 2, 3], "order-insensitive");
        assert_eq!(p.evict_plan(&[7]), Vec::<u64>::new());
        assert_eq!(p.evict_plan(&[]), Vec::<u64>::new());
        // keep_last(0) clamps to 1: everything but the newest goes.
        let p = RetentionPolicy::keep_last(0);
        assert_eq!(p.evict_plan(&[1, 2, 3]), vec![1, 2]);
    }

    #[test]
    fn evict_plan_ttl_and_union_semantics() {
        // TTL alone: newest is 10, age 3 keeps epochs > 7.
        let p = RetentionPolicy::keep_all().with_max_epoch_age(3);
        assert_eq!(p.evict_plan(&[1, 6, 8, 10]), vec![1, 6]);
        // The newest epoch is immune even to a zero TTL.
        let p = RetentionPolicy::keep_all().with_max_epoch_age(0);
        assert_eq!(p.evict_plan(&[9, 10]), vec![9]);
        // Union: keep_last(3) alone keeps {6, 8, 10}; TTL 2 also evicts 6.
        let p = RetentionPolicy::keep_last(3).with_max_epoch_age(2);
        assert_eq!(p.evict_plan(&[1, 6, 8, 10]), vec![1, 6]);
    }

    #[test]
    fn keep_all_is_the_identity() {
        assert_eq!(
            RetentionPolicy::keep_all().evict_plan(&[1, 2, 3]),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn reports_count_and_summarize() {
        let report = OpenReport {
            outcomes: vec![
                FileOutcome::Loaded {
                    dataset: "d".into(),
                    epoch: 1,
                    path: "d-e1.json".into(),
                },
                FileOutcome::Stray {
                    path: "README.txt".into(),
                    note: "not an artifact file (.json/.gda)".into(),
                },
                FileOutcome::Quarantined {
                    path: "d-e2.json".into(),
                    moved_to: "quarantine/d-e2.json".into(),
                    reason: "checksum mismatch".into(),
                },
                FileOutcome::Retired {
                    dataset: "d".into(),
                    epoch: 0,
                    path: "d-e0.json".into(),
                },
            ],
        };
        assert_eq!(report.loaded(), 1);
        assert_eq!(report.strays(), 1);
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.retired(), 1);
        assert_eq!(report.already_registered(), 0);
        assert_eq!(
            report.summary(),
            "1 loaded, 0 already registered, 1 stray, 1 quarantined, 1 retired"
        );
        let gc = GcReport {
            evictions: vec![GcEviction {
                dataset: "d".into(),
                epoch: 0,
                path: Some("d-e0.json".into()),
                deleted: false,
                error: Some("permission denied".into()),
            }],
        };
        assert_eq!(gc.evicted(), 1);
        assert_eq!(gc.failed_deletions(), 1);
        assert_eq!(gc.summary(), "1 evicted, 1 failed deletions");
    }

    #[test]
    fn lifecycle_types_round_trip_through_json() {
        let report = OpenReport {
            outcomes: vec![FileOutcome::AlreadyRegistered {
                dataset: "d".into(),
                epoch: 3,
                path: "d-e3.json".into(),
                existing: Some("d-e3.gda".into()),
            }],
        };
        let text = serde_json::to_string(&report).unwrap();
        let back: OpenReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
        let policy = RetentionPolicy::keep_last(4).with_max_epoch_age(9);
        let text = serde_json::to_string(&policy).unwrap();
        let back: RetentionPolicy = serde_json::from_str(&text).unwrap();
        assert_eq!(policy, back);
    }
}
