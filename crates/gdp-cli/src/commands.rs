//! Implementation of the `gdp` subcommands.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::{
    ArtifactFormat, DisclosureConfig, DisclosureSession, MultiLevelDiscloser, NoiseMechanism,
    Privilege, Query, ReleaseArtifact, SpecializationConfig, Specializer, SplitStrategy,
};
use gdp_datagen::engine::GraphModel;
use gdp_datagen::{DblpConfig, DblpGenerator};
use gdp_graph::{io as graph_io, EdgeDelta, GraphStats};
use gdp_mechanisms::PrivacyBudget;
use gdp_serve::{
    workload, AnswerService, IndexedRelease, Query as ServeQuery, ReleaseStore,
    RetentionPolicy, TypedAnswer,
};

/// Top-level usage text.
pub const USAGE: &str = "\
gdp — group differential privacy for association graphs

commands:
  generate --out FILE [--model dblp|erdos-renyi|zipf|blocks] [--seed N]
           [--scale tiny|laptop|paper]            (dblp)
           [--left N] [--right N]                 (all streaming models)
           [--edges N]                            (erdos-renyi)
           [--per-right N] [--exponent S]         (zipf)
           [--blocks N] [--per-left N] [--intra P] (blocks)
      generate an association graph and write it as an edge list; the
      default dblp model is the serial DBLP-like generator, the other
      three run through the parallel streaming engine
  stats --in FILE
      print dataset statistics for an edge-list graph
  disclose --in FILE [--rounds N] [--eps E] [--delta D]
           [--strategy exponential|median|random]
           [--mechanism gaussian|analytic|laplace|geometric]
           [--seed N] [--csv FILE]
      run the two-phase group-private disclosure pipeline and print the
      per-level noisy association counts
  publish --in FILE --out FILE [--format json|bin] [--dataset NAME]
          [--epoch N] [--rounds N] [--eps E] [--delta D]
          [--budget-eps E] [--budget-delta D]
          [--deltas D1.txt[,D2.txt...] --out-dir DIR]
          [--strategy exponential|median|random]
          [--mechanism gaussian|analytic|laplace|geometric] [--seed N]
          [--hist-max D]
      run the pipeline inside a budget-enforced session and write the
      sealed release artifact (manifest + hierarchy + noisy levels) —
      the long-lived product consumers answer from. --format selects
      the encoding: json (debug/interop, the default for most paths)
      or bin (the `.gda` binary container stores load fastest); when
      omitted the --out extension decides (`.gda` → bin, else json),
      and a --format that contradicts the extension is an error, since
      stores decode by extension. The write is crash-safe (staged
      sibling, fsync, atomic rename): a kill mid-publish leaves
      debris, never a torn artifact. Releases the total, per-group
      counts and the left-degree histogram (bins 0..=--hist-max,
      default 64) at every level. With --deltas, publishes an epoch
      CHAIN instead: the base epoch from --in, then one epoch per
      plain-text delta file (docs/epochs.md) via the incremental
      publish_next path, all into --out-dir under canonical names;
      each manifest carries the chain's cumulative ledger, and an
      over-budget epoch stops the chain with a typed refusal
  convert --in FILE --out FILE [--format json|bin]
      re-encode a published artifact between the JSON and `.gda`
      binary formats (either direction, or same-format rewrite). The
      manifest — content digest included — is preserved verbatim, so a
      converted artifact keeps verifying and answers bit-identically.
      The output format resolves like publish: --format, else the
      --out extension. The write is crash-safe (staged, fsync, rename)
  answer (--artifact FILE | --artifact-dir DIR) --queries FILE
         [--privilege P] [--level L] [--dataset NAME] [--epoch N]
         [--query-type subset|mass|hist|total|all]
      load one published artifact (JSON or `.gda` binary, decided by
      the extension; directories may mix both formats freely) — or
      scan a directory of them into a
      sharded store — and answer a typed-query workload file (subset
      lines `L 0 1 2` / `R 5 7`, plus `mass L 3`, `hist L`, `total R`,
      `#` comments) through the privilege-gated serving path.
      --level defaults to the finest level the privilege may read;
      with --artifact-dir, --dataset defaults to the only scanned
      dataset and --epoch to its latest; --query-type filters the
      workload to one variant. Pure post-processing: no budget is spent
  serve (--artifact FILE | --artifact-dir DIR) [--addr HOST:PORT]
        [--workers N] [--queue N] [--deadline-ms N] [--io-timeout-ms N]
        [--drain-ms N] [--retry-after S] [--cache-capacity N]
        [--port-file FILE] [--reload-interval-ms N]
      expose the answering service over HTTP (see docs/operations.md
      for the endpoints and error taxonomy). The request queue is
      bounded (--queue; overflow answers 503 + Retry-After), every
      request carries a deadline (--deadline-ms; expiry answers 504),
      sockets time out against slow peers (--io-timeout-ms), and
      worker panics are supervised and respawned. With --artifact-dir
      the open is degraded-tolerant: damaged files are quarantined
      (reported, never fatal), POST /v1/admin/reload re-scans the
      directory live, and --reload-interval-ms N > 0 starts a
      supervised watcher that re-scans every N ms. SIGINT/SIGTERM or
      POST /shutdown drains gracefully within --drain-ms and prints a
      JSON drain report; a dirty drain exits nonzero. --addr defaults
      to 127.0.0.1:7878 (:0 picks a free port; --port-file records the
      bound address)
  gc --artifact-dir DIR (--keep-last N | --ttl-epochs T | both)
     [--dataset NAME] [--dry-run]
      apply a retention policy to a published artifact directory:
      epochs beyond the N newest (--keep-last) or more than T epoch
      numbers older than the newest (--ttl-epochs) are unregistered
      and their files durably deleted (the newest epoch of a dataset
      is never evicted). --dataset limits the pass to one dataset;
      --dry-run prints the eviction plan without deleting. Prints the
      JSON GC report on stdout; failed deletions exit nonzero
  help
      show this message
";

type CmdResult = Result<(), String>;

/// Parses `--key value` pairs (and bare `--flag` as `"true"`).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{arg}`"))?;
        let value = if iter.peek().is_some_and(|next| !next.starts_with("--")) {
            // peek() just confirmed the pair's value is present; the
            // fallback keeps this arm panic-free regardless.
            iter.next().cloned().unwrap_or_else(|| "true".to_string())
        } else {
            "true".to_string()
        };
        map.insert(key.to_string(), value);
    }
    Ok(map)
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got `{v}`")),
    }
}

fn scale_config(flags: &HashMap<String, String>) -> Result<DblpConfig, String> {
    match flags.get("scale").map(String::as_str).unwrap_or("laptop") {
        "tiny" => Ok(DblpConfig::tiny()),
        "laptop" => Ok(DblpConfig::laptop_scale()),
        "paper" => Ok(DblpConfig::paper_scale()),
        other => Err(format!("unknown scale `{other}` (tiny|laptop|paper)")),
    }
}

/// Builds the streaming-model description selected by `--model` flags,
/// validating ranges up front so bad flags surface as clean CLI errors
/// rather than panics from the model constructors.
fn streaming_model(name: &str, flags: &HashMap<String, String>) -> Result<GraphModel, String> {
    let positive = |key: &str, v: u32| -> Result<u32, String> {
        if v == 0 {
            return Err(format!("--{key} must be positive"));
        }
        Ok(v)
    };
    let left = positive("left", get_num(flags, "left", 10_000)?)?;
    let right = positive("right", get_num(flags, "right", 10_000)?)?;
    match name {
        "erdos-renyi" => Ok(GraphModel::ErdosRenyi {
            left,
            right,
            edges: get_num(flags, "edges", 100_000)?,
        }),
        "zipf" => {
            let exponent: f64 = get_num(flags, "exponent", 1.15)?;
            if !exponent.is_finite() || exponent <= 0.0 {
                return Err(format!("--exponent must be finite and positive, got {exponent}"));
            }
            Ok(GraphModel::ZipfAttachment {
                left,
                right,
                per_right: positive("per-right", get_num(flags, "per-right", 3)?)?,
                exponent,
            })
        }
        "blocks" => {
            let blocks = positive("blocks", get_num(flags, "blocks", 16)?)?;
            if blocks > left || blocks > right {
                return Err(format!(
                    "--blocks {blocks} exceeds a side ({left}×{right})"
                ));
            }
            let intra_prob: f64 = get_num(flags, "intra", 0.8)?;
            if !(0.0..=1.0).contains(&intra_prob) {
                return Err(format!("--intra must be within [0, 1], got {intra_prob}"));
            }
            Ok(GraphModel::PlantedBlocks {
                left,
                right,
                blocks,
                per_left: positive("per-left", get_num(flags, "per-left", 10)?)?,
                intra_prob,
            })
        }
        other => Err(format!(
            "unknown model `{other}` (dblp|erdos-renyi|zipf|blocks)"
        )),
    }
}

/// Rejects flags that do not apply to the selected generate model, so a
/// typo or a size flag from another model cannot be silently dropped.
fn check_generate_flags(model: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let allowed: &[&str] = match model {
        "dblp" => &["out", "model", "seed", "scale"],
        "erdos-renyi" => &["out", "model", "seed", "left", "right", "edges"],
        "zipf" => &["out", "model", "seed", "left", "right", "per-right", "exponent"],
        "blocks" => &[
            "out", "model", "seed", "left", "right", "blocks", "per-left", "intra",
        ],
        // Unknown model names error later with the full list.
        _ => return Ok(()),
    };
    for key in flags.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "--{key} does not apply to model `{model}` (accepted: {})",
                allowed
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    Ok(())
}

/// `gdp generate`.
pub fn generate(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let out = flags.get("out").ok_or("generate requires --out FILE")?;
    let seed: u64 = get_num(&flags, "seed", 42)?;
    let model_name = flags.get("model").map(String::as_str).unwrap_or("dblp");
    check_generate_flags(model_name, &flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = match model_name {
        "dblp" => {
            let config = scale_config(&flags)?;
            eprintln!(
                "generating {} authors × {} papers (seed {seed})...",
                config.authors, config.papers
            );
            DblpGenerator::new(config).generate(&mut rng)
        }
        name => {
            let model = streaming_model(name, &flags)?;
            eprintln!(
                "generating {} (~{} edge draws, seed {seed}, streaming engine)...",
                model.name(),
                model.expected_edges()
            );
            model.generate(&mut rng)
        }
    };
    let file = File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    graph_io::write_edge_list(&graph, BufWriter::new(file))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("wrote {} edges to {out}", graph.edge_count());
    Ok(())
}

/// `gdp stats`.
pub fn stats(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let input = flags.get("in").ok_or("stats requires --in FILE")?;
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let graph =
        graph_io::read_edge_list(BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
    println!("{}", GraphStats::compute(&graph));
    Ok(())
}

fn parse_strategy(flags: &HashMap<String, String>) -> Result<SplitStrategy, String> {
    match flags
        .get("strategy")
        .map(String::as_str)
        .unwrap_or("exponential")
    {
        "exponential" => Ok(SplitStrategy::Exponential),
        "median" => Ok(SplitStrategy::Median),
        "random" => Ok(SplitStrategy::Random),
        other => Err(format!("unknown strategy `{other}`")),
    }
}

fn parse_mechanism(flags: &HashMap<String, String>) -> Result<NoiseMechanism, String> {
    match flags
        .get("mechanism")
        .map(String::as_str)
        .unwrap_or("gaussian")
    {
        "gaussian" => Ok(NoiseMechanism::GaussianClassic),
        "analytic" => Ok(NoiseMechanism::GaussianAnalytic),
        "laplace" => Ok(NoiseMechanism::Laplace),
        "geometric" => Ok(NoiseMechanism::Geometric),
        other => Err(format!("unknown mechanism `{other}`")),
    }
}

/// `gdp disclose`.
pub fn disclose(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let input = flags.get("in").ok_or("disclose requires --in FILE")?;
    let rounds: u32 = get_num(&flags, "rounds", 8)?;
    let eps: f64 = get_num(&flags, "eps", 0.5)?;
    let delta: f64 = get_num(&flags, "delta", 1e-6)?;
    let seed: u64 = get_num(&flags, "seed", 42)?;
    let strategy = parse_strategy(&flags)?;
    let mechanism = parse_mechanism(&flags)?;

    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let graph =
        graph_io::read_edge_list(BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut spec_config =
        SpecializationConfig::paper_default(rounds).map_err(|e| e.to_string())?;
    spec_config.strategy = strategy;
    eprintln!("phase 1: specializing {rounds} rounds ({strategy:?})...");
    let hierarchy = Specializer::new(spec_config)
        .specialize(&graph, &mut rng)
        .map_err(|e| e.to_string())?;

    eprintln!("phase 2: disclosing {} levels ({mechanism:?})...", hierarchy.level_count());
    let disclosure = DisclosureConfig::count_only(eps, delta)
        .map_err(|e| e.to_string())?
        .with_mechanism(mechanism)
        .with_queries(vec![Query::TotalAssociations]);
    let release = MultiLevelDiscloser::new(disclosure)
        .disclose(&graph, &hierarchy, &mut rng)
        .map_err(|e| e.to_string())?;

    let true_total = graph.edge_count() as f64;
    println!("level  groups      sensitivity  noisy_total      rer");
    for level in release.levels() {
        let q = &level.queries[0];
        let noisy = q.scalar().unwrap_or(f64::NAN);
        println!(
            "{:>5}  {:>10}  {:>11}  {:>11.1}  {:>7.4}",
            level.level,
            level.group_count,
            q.sensitivity.l2,
            noisy,
            gdp_core::relative_error(noisy, true_total)
        );
    }

    if let Some(csv_path) = flags.get("csv") {
        std::fs::write(csv_path, release.total_count_csv())
            .map_err(|e| format!("cannot write {csv_path}: {e}"))?;
        eprintln!("wrote {csv_path}");
    }
    Ok(())
}

/// Resolves the artifact encoding for an output path: the explicit
/// `--format json|bin` flag when given, else the path's extension
/// (`.gda` → binary, anything else → JSON). A flag that contradicts a
/// format-bearing extension is refused: directory scans decode by
/// extension, so the mismatch would publish a file every store
/// quarantines.
fn resolve_out_format(
    flags: &HashMap<String, String>,
    out: &str,
) -> Result<ArtifactFormat, String> {
    let from_path = ArtifactFormat::from_path(std::path::Path::new(out));
    let Some(flag) = flags.get("format") else {
        return Ok(from_path.unwrap_or(ArtifactFormat::Json));
    };
    let chosen = match flag.as_str() {
        "json" => ArtifactFormat::Json,
        "bin" => ArtifactFormat::Binary,
        other => return Err(format!("unknown format `{other}` (json|bin)")),
    };
    match from_path {
        Some(ext) if ext != chosen => Err(format!(
            "--format {chosen} contradicts the --out extension (stores decode \
             by extension; name the file .{})",
            chosen.extension()
        )),
        _ => Ok(chosen),
    }
}

/// `gdp publish` — the serving-side pipeline: run a budget-enforced
/// disclosure session over an edge-list graph and write the sealed
/// [`ReleaseArtifact`] consumers answer from.
pub fn publish(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let input = flags.get("in").ok_or("publish requires --in FILE")?;
    let dataset = flags.get("dataset").cloned().unwrap_or_else(|| "default".to_string());
    let epoch: u64 = get_num(&flags, "epoch", 1)?;
    let rounds: u32 = get_num(&flags, "rounds", 8)?;
    let eps: f64 = get_num(&flags, "eps", 0.5)?;
    let delta: f64 = get_num(&flags, "delta", 1e-6)?;
    // The authorized total defaults to exactly one release's charge.
    let budget_eps: f64 = get_num(&flags, "budget-eps", eps)?;
    let budget_delta: f64 = get_num(&flags, "budget-delta", delta)?;
    let seed: u64 = get_num(&flags, "seed", 42)?;
    let strategy = parse_strategy(&flags)?;
    let mechanism = parse_mechanism(&flags)?;

    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let graph =
        graph_io::read_edge_list(BufReader::new(file)).map_err(|e| format!("{input}: {e}"))?;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut spec_config =
        SpecializationConfig::paper_default(rounds).map_err(|e| e.to_string())?;
    spec_config.strategy = strategy;
    eprintln!("phase 1: specializing {rounds} rounds ({strategy:?})...");
    let hierarchy = Specializer::new(spec_config)
        .specialize(&graph, &mut rng)
        .map_err(|e| e.to_string())?;

    let hist_max: u32 = get_num(&flags, "hist-max", 64)?;
    let total = PrivacyBudget::new(budget_eps, budget_delta).map_err(|e| e.to_string())?;
    let config = DisclosureConfig::count_only(eps, delta)
        .map_err(|e| e.to_string())?
        .with_mechanism(mechanism)
        .with_queries(vec![
            Query::TotalAssociations,
            Query::PerGroupCounts,
            Query::LeftDegreeHistogram {
                max_degree: hist_max,
            },
        ]);
    eprintln!(
        "phase 2: publishing dataset `{dataset}` epoch {epoch} ({mechanism:?}, eps_g {eps})..."
    );
    let mut session = DisclosureSession::new(graph, hierarchy, total);

    if let Some(delta_list) = flags.get("deltas") {
        // Epoch-chain mode: publish the base epoch, then one further
        // epoch per delta file via the incremental `publish_next` path
        // (dirty-row statistics update, cumulative ledger enforced),
        // all into --out-dir under canonical file names. The chain
        // stops with the typed refusal the moment an epoch's charge
        // does not fit the authorized total — already-published
        // artifacts stay on disk.
        let dir = flags
            .get("out-dir")
            .ok_or("publish --deltas requires --out-dir DIR")?;
        let format = match flags.get("format").map(String::as_str) {
            None | Some("json") => ArtifactFormat::Json,
            Some("bin") => ArtifactFormat::Binary,
            Some(other) => return Err(format!("unknown format `{other}` (json|bin)")),
        };
        let (artifact, path) = session
            .publish_to_dir_as(&config, &dataset, epoch, dir, format, &mut rng)
            .map_err(|e| e.to_string())?;
        eprintln!("epoch {epoch}: wrote {}", path.display());
        print_ledger(artifact.manifest());
        for delta_path in delta_list.split(',').filter(|s| !s.is_empty()) {
            let text = std::fs::read_to_string(delta_path)
                .map_err(|e| format!("cannot read {delta_path}: {e}"))?;
            let edge_delta =
                EdgeDelta::from_text(&text).map_err(|e| format!("{delta_path}: {e}"))?;
            let (artifact, path) = session
                .publish_next_to_dir_as(&config, &dataset, &edge_delta, dir, format, &mut rng)
                .map_err(|e| format!("epoch chain refused at {delta_path}: {e}"))?;
            eprintln!(
                "epoch {}: applied {delta_path} (+{} -{} edges) and wrote {}",
                artifact.epoch(),
                edge_delta.insert_count(),
                edge_delta.delete_count(),
                path.display(),
            );
            print_ledger(artifact.manifest());
        }
        return Ok(());
    }

    let out = flags.get("out").ok_or("publish requires --out FILE")?;
    let format = resolve_out_format(&flags, out)?;
    let artifact = session
        .publish(&config, &dataset, epoch, &mut rng)
        .map_err(|e| e.to_string())?;

    // Atomic write: stage, fsync, rename — a crash mid-publish leaves
    // `*.tmp` debris for the store to quarantine, never a torn artifact.
    artifact
        .save_atomic_as(out, format)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let m = artifact.manifest();
    eprintln!(
        "wrote {out} ({format}): schema v{}, {} levels, {} groups at the finest level, \
         spent eps {:.3} of {:.3}",
        m.schema_version,
        m.level_count,
        m.group_counts.first().copied().unwrap_or(0),
        session.accountant().spent_epsilon(),
        budget_eps,
    );
    print_ledger(m);
    Ok(())
}

/// Prints a manifest's cross-epoch ledger block (schema v3+) to stderr.
fn print_ledger(m: &gdp_core::ArtifactManifest) {
    if let Some(ledger) = &m.ledger {
        eprintln!(
            "ledger: epoch charge eps {:.3}, chain cumulative eps {:.3} of {:.3} \
             across {} release(s), remaining eps {:.3}{}",
            ledger.epoch_epsilon,
            ledger.cumulative_epsilon,
            ledger.total_epsilon,
            ledger.releases,
            ledger.remaining_epsilon(),
            if ledger.exhausted() { " (budget exhausted)" } else { "" },
        );
    }
}

/// `gdp convert` — re-encode a published artifact between the JSON and
/// `.gda` binary formats. Pure re-encoding: the manifest (content
/// digest included) is carried verbatim, so the output keeps verifying
/// and answers bit-identically to the input.
pub fn convert(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let input = flags.get("in").ok_or("convert requires --in FILE")?;
    let out = flags.get("out").ok_or("convert requires --out FILE")?;
    let format = resolve_out_format(&flags, out)?;
    let artifact =
        ReleaseArtifact::load(input).map_err(|e| format!("{input}: {e}"))?;
    artifact
        .save_atomic_as(out, format)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let m = artifact.manifest();
    eprintln!(
        "converted {input} -> {out} ({format}): dataset `{}` epoch {}, \
         digest {} preserved",
        m.dataset,
        m.epoch,
        m.content_digest
            .map_or_else(|| "absent (v1)".to_string(), |d| format!("{d:#018x}")),
    );
    Ok(())
}

/// Parses the `--query-type` filter into a predicate over typed
/// queries (`None` keeps every variant).
fn query_type_filter(
    flags: &HashMap<String, String>,
) -> Result<Option<&'static str>, String> {
    match flags.get("query-type").map(String::as_str).unwrap_or("all") {
        "all" => Ok(None),
        "subset" => Ok(Some("subset_count")),
        "mass" => Ok(Some("group_mass")),
        "hist" => Ok(Some("degree_histogram")),
        "total" => Ok(Some("side_total")),
        other => Err(format!(
            "unknown query type `{other}` (subset|mass|hist|total|all)"
        )),
    }
}

/// A short human-readable parameter column for the answer table.
fn query_detail(query: &ServeQuery) -> String {
    match query {
        ServeQuery::SubsetCount(q) => format!("|S|={}", q.nodes.len()),
        ServeQuery::GroupMass { group, .. } => format!("g={group}"),
        ServeQuery::DegreeHistogram { .. } | ServeQuery::SideTotal { .. } => "-".to_string(),
    }
}

/// Opens the release store selected by `--artifact FILE` (one parsed
/// artifact) or `--artifact-dir DIR` (a scanned directory) — the shared
/// source for `answer` and `serve`. `who` names the subcommand in
/// usage errors.
fn open_store(flags: &HashMap<String, String>, who: &str) -> Result<ReleaseStore, String> {
    match (flags.get("artifact"), flags.get("artifact-dir")) {
        (Some(_), Some(_)) => {
            Err("--artifact and --artifact-dir are mutually exclusive".to_string())
        }
        (None, None) => Err(format!(
            "{who} requires --artifact FILE or --artifact-dir DIR"
        )),
        (Some(artifact_path), None) => {
            // Dispatches on the extension, so a `.gda` binary artifact
            // serves exactly like its JSON twin.
            let artifact = ReleaseArtifact::load(artifact_path)
                .map_err(|e| format!("{artifact_path}: {e}"))?;
            let store = ReleaseStore::new();
            store
                .insert(IndexedRelease::new(artifact).map_err(|e| e.to_string())?)
                .map_err(|e| e.to_string())?;
            Ok(store)
        }
        (None, Some(dir)) => {
            let store = ReleaseStore::open_dir(dir).map_err(|e| format!("{dir}: {e}"))?;
            eprintln!(
                "scanned {dir}: {} artifacts across {:?}",
                store.len(),
                store.datasets()
            );
            Ok(store)
        }
    }
}

/// `gdp answer` — load a published artifact (or scan a directory of
/// them) and answer a typed-query workload under a privilege through
/// the serving path.
pub fn answer(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let queries_path = flags.get("queries").ok_or("answer requires --queries FILE")?;
    let privilege = Privilege::new(get_num(&flags, "privilege", 0)?);
    let type_filter = query_type_filter(&flags)?;
    let store = open_store(&flags, "answer")?;

    let dataset = match flags.get("dataset") {
        Some(name) => name.clone(),
        None => {
            let datasets = store.datasets();
            match datasets.as_slice() {
                [only] => only.clone(),
                many => {
                    return Err(format!(
                        "--dataset required: the store holds {many:?}"
                    ))
                }
            }
        }
    };
    let epoch = match flags.get("epoch") {
        Some(_) => get_num(&flags, "epoch", 0)?,
        None => *store
            .epochs(&dataset)
            .last()
            .ok_or_else(|| format!("no artifacts for dataset `{dataset}`"))?,
    };
    let artifact_levels = store
        .get(&dataset, epoch)
        .map_err(|e| e.to_string())?
        .level_count();
    let service = AnswerService::new(store);

    let file = File::open(queries_path)
        .map_err(|e| format!("cannot open {queries_path}: {e}"))?;
    let mut queries = workload::read_query_file(BufReader::new(file))
        .map_err(|e| format!("{queries_path}: {e}"))?;
    if let Some(name) = type_filter {
        let before = queries.len();
        queries.retain(|q| q.name() == name);
        eprintln!("--query-type kept {} of {before} queries", queries.len());
    }

    let level = match flags.get("level") {
        Some(_) => get_num(&flags, "level", 0)?,
        None => service
            .finest_allowed(&dataset, epoch, privilege)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| {
                format!(
                    "privilege {} maps to no level (the artifact has {} levels)",
                    privilege.finest_level(),
                    artifact_levels,
                )
            })?,
    };
    eprintln!(
        "answering {} queries from `{dataset}` epoch {epoch} at level {level} \
         (privilege {})...",
        queries.len(),
        privilege.finest_level()
    );
    let answers = service
        .answer_typed_batch(&dataset, epoch, privilege, level, &queries)
        .map_err(|e| e.to_string())?;

    println!("query  type              side  param    answer");
    for (i, (query, answer)) in queries.iter().zip(&answers).enumerate() {
        let rendered = match answer {
            TypedAnswer::Scalar(v) => format!("{v:.2}"),
            TypedAnswer::Histogram(bins) => format!(
                "histogram[{} bins, mass {:.1}]",
                bins.len(),
                bins.iter().sum::<f64>()
            ),
        };
        println!(
            "{i:>5}  {:<16}  {:>4}  {:<7}  {rendered}",
            query.name(),
            query.side().to_string(),
            query_detail(query),
        );
    }
    let stats = service.cache_stats();
    eprintln!(
        "answered {} queries ({} memo hits) — pure post-processing, no budget spent",
        answers.len(),
        stats.hits
    );
    Ok(())
}

/// `gdp serve` — expose the answering service over HTTP until a
/// `SIGINT`/`SIGTERM` or a `POST /shutdown` triggers a graceful drain.
///
/// A `--artifact-dir` store opens in degraded mode (damage quarantined
/// and reported, never fatal) and stays reloadable: `POST
/// /v1/admin/reload` re-scans on demand, `--reload-interval-ms` adds a
/// supervised watcher that re-scans continuously.
pub fn serve(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    // The serving path opens directories in degraded mode: a single
    // damaged file is quarantined with a note, not a refusal to start.
    let (store, reload) = match (flags.get("artifact"), flags.get("artifact-dir")) {
        (Some(_), Some(_)) => {
            return Err("--artifact and --artifact-dir are mutually exclusive".to_string())
        }
        (None, None) => {
            return Err("serve requires --artifact FILE or --artifact-dir DIR".to_string())
        }
        (Some(_), None) => (open_store(&flags, "serve")?, gdp_net::ReloadConfig::default()),
        (None, Some(dir)) => {
            let (store, report) =
                ReleaseStore::open_dir_report(dir).map_err(|e| format!("{dir}: {e}"))?;
            eprintln!("scanned {dir}: {}", report.summary());
            for outcome in &report.outcomes {
                if let gdp_serve::FileOutcome::Quarantined { path, moved_to, reason } = outcome {
                    eprintln!("quarantined {path} -> {moved_to}: {reason}");
                }
            }
            let interval_ms: u64 = get_num(&flags, "reload-interval-ms", 0)?;
            let reload = gdp_net::ReloadConfig {
                dir: Some(dir.into()),
                interval: (interval_ms > 0).then(|| std::time::Duration::from_millis(interval_ms)),
                initial_quarantined: report.quarantined() as u64,
            };
            (store, reload)
        }
    };
    if store.is_empty() {
        return Err("the store holds no artifacts; publish one first".to_string());
    }
    let cache_capacity: usize =
        get_num(&flags, "cache-capacity", AnswerService::CACHE_CAPACITY)?;
    let service = std::sync::Arc::new(AnswerService::with_cache_capacity(store, cache_capacity));

    let config = gdp_net::ServerConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        workers: get_num(&flags, "workers", 4)?,
        queue_capacity: get_num(&flags, "queue", 128)?,
        request_deadline: std::time::Duration::from_millis(get_num(&flags, "deadline-ms", 2_000)?),
        io_timeout: std::time::Duration::from_millis(get_num(&flags, "io-timeout-ms", 10_000)?),
        drain_deadline: std::time::Duration::from_millis(get_num(&flags, "drain-ms", 10_000)?),
        retry_after_secs: get_num(&flags, "retry-after", 1)?,
        reload,
        ..gdp_net::ServerConfig::default()
    };

    // The signal hook must be in place before the first connection so a
    // supervisor can stop the server at any point of its lifetime.
    gdp_net::signal::install();
    let handle = gdp_net::Server::start(service, config, gdp_net::FaultPlan::none())
        .map_err(|e| format!("cannot bind: {e}"))?;
    let addr = handle.addr();
    // Machine-readable on stdout (scripts capture the bound port, which
    // matters with `--addr 127.0.0.1:0`); prose on stderr.
    println!("listening on http://{addr}");
    if let Some(port_file) = flags.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {port_file}: {e}"))?;
    }
    eprintln!("serving; stop with SIGINT/SIGTERM or POST /shutdown");

    while !gdp_net::signal::shutdown_requested() && !handle.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("draining...");
    let report = handle.join();
    println!(
        "{}",
        serde_json::to_string(&report).map_err(|e| e.to_string())?
    );
    if report.clean {
        Ok(())
    } else {
        Err(format!(
            "drain was not clean: {} workers and {} queued connections abandoned",
            report.abandoned_workers, report.abandoned_queue
        ))
    }
}

/// `gdp gc` — apply a retention policy to a published artifact
/// directory: superseded epochs are unregistered and their files
/// durably deleted (unlink + directory fsync). The newest epoch of a
/// dataset is never evicted, so a served dataset cannot be emptied.
pub fn gc(args: &[String]) -> CmdResult {
    let flags = parse_flags(args)?;
    let dir = flags.get("artifact-dir").ok_or("gc requires --artifact-dir DIR")?;
    let keep_last = match flags.get("keep-last") {
        None => None,
        Some(_) => Some(get_num::<usize>(&flags, "keep-last", 1)?),
    };
    let ttl = match flags.get("ttl-epochs") {
        None => None,
        Some(_) => Some(get_num::<u64>(&flags, "ttl-epochs", 0)?),
    };
    if keep_last.is_none() && ttl.is_none() {
        return Err("gc requires --keep-last N and/or --ttl-epochs T".to_string());
    }
    let policy = RetentionPolicy {
        keep_last: keep_last.map(|n| n.max(1)),
        max_epoch_age: ttl,
    };
    let dataset = flags.get("dataset").cloned();
    let dry_run = flags.contains_key("dry-run");

    // Degraded open: GC must work on exactly the directories that need
    // it most — ones holding crash debris next to committed epochs.
    let (store, report) =
        ReleaseStore::open_dir_report(dir).map_err(|e| format!("{dir}: {e}"))?;
    eprintln!("scanned {dir}: {}", report.summary());
    if let Some(name) = &dataset {
        if !store.datasets().contains(name) {
            return Err(format!(
                "dataset `{name}` not found in {dir} (holds {:?})",
                store.datasets()
            ));
        }
    }

    if dry_run {
        let datasets = match &dataset {
            Some(name) => vec![name.clone()],
            None => store.datasets(),
        };
        for name in datasets {
            let plan = policy.evict_plan(&store.epochs(&name));
            eprintln!(
                "dataset `{name}`: would evict {} of {} epochs: {plan:?}",
                plan.len(),
                store.epochs(&name).len()
            );
        }
        eprintln!("dry run: nothing deleted");
        return Ok(());
    }

    let gc_report = store.gc(&policy, dataset.as_deref());
    for eviction in &gc_report.evictions {
        match (&eviction.path, eviction.deleted) {
            (Some(path), true) => {
                eprintln!("evicted {}/e{}: deleted {path}", eviction.dataset, eviction.epoch)
            }
            (Some(path), false) => eprintln!(
                "evicted {}/e{}: FAILED to delete {path}: {}",
                eviction.dataset,
                eviction.epoch,
                eviction.error.as_deref().unwrap_or("unknown error")
            ),
            (None, _) => eprintln!(
                "evicted {}/e{} (memory-only entry)",
                eviction.dataset, eviction.epoch
            ),
        }
    }
    eprintln!("gc: {}", gc_report.summary());
    println!(
        "{}",
        serde_json::to_string(&gc_report).map_err(|e| e.to_string())?
    );
    if gc_report.failed_deletions() > 0 {
        return Err(format!(
            "{} backing files could not be deleted",
            gc_report.failed_deletions()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> HashMap<String, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parse_flag_pairs_and_bare_flags() {
        let f = flags(&["--out", "x.txt", "--paper", "--seed", "7"]);
        assert_eq!(f.get("out").unwrap(), "x.txt");
        assert_eq!(f.get("paper").unwrap(), "true");
        assert_eq!(f.get("seed").unwrap(), "7");
    }

    #[test]
    fn reject_positional_arguments() {
        let args = vec!["positional".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let f = flags(&["--eps", "0.7"]);
        assert_eq!(get_num(&f, "eps", 0.5).unwrap(), 0.7);
        assert_eq!(get_num(&f, "delta", 1e-6).unwrap(), 1e-6);
        let f = flags(&["--eps", "abc"]);
        assert!(get_num::<f64>(&f, "eps", 0.5).is_err());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(scale_config(&flags(&[])).unwrap().authors, 12_951);
        assert_eq!(
            scale_config(&flags(&["--scale", "tiny"])).unwrap().authors,
            120
        );
        assert!(scale_config(&flags(&["--scale", "galaxy"])).is_err());
    }

    #[test]
    fn streaming_model_parsing() {
        let m = streaming_model("erdos-renyi", &flags(&["--edges", "500", "--left", "50"])).unwrap();
        assert_eq!(
            m,
            GraphModel::ErdosRenyi {
                left: 50,
                right: 10_000,
                edges: 500
            }
        );
        assert_eq!(
            streaming_model("zipf", &flags(&[])).unwrap().name(),
            "zipf_attachment"
        );
        assert_eq!(
            streaming_model("blocks", &flags(&["--intra", "0.5"]))
                .unwrap()
                .name(),
            "planted_blocks"
        );
        assert!(streaming_model("galaxy", &flags(&[])).is_err());
    }

    #[test]
    fn generate_rejects_inapplicable_flags() {
        assert!(check_generate_flags("zipf", &flags(&["--out", "g", "--edges", "5"])).is_err());
        assert!(check_generate_flags("dblp", &flags(&["--out", "g", "--left", "5"])).is_err());
        assert!(check_generate_flags("erdos-renyi", &flags(&["--per-rigth", "5"])).is_err());
        assert!(
            check_generate_flags("zipf", &flags(&["--out", "g", "--per-right", "5"])).is_ok()
        );
        assert!(check_generate_flags("dblp", &flags(&["--out", "g", "--scale", "tiny"])).is_ok());
    }

    #[test]
    fn streaming_model_rejects_degenerate_parameters() {
        assert!(streaming_model("erdos-renyi", &flags(&["--left", "0"])).is_err());
        assert!(streaming_model("zipf", &flags(&["--exponent", "0"])).is_err());
        assert!(streaming_model("zipf", &flags(&["--per-right", "0"])).is_err());
        assert!(streaming_model("blocks", &flags(&["--intra", "1.5"])).is_err());
        assert!(streaming_model("blocks", &flags(&["--blocks", "0"])).is_err());
        assert!(
            streaming_model("blocks", &flags(&["--left", "4", "--blocks", "8"])).is_err()
        );
    }

    #[test]
    fn generate_streaming_model_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gdp-cli-model-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("er.txt");
        let path_s = path.to_str().unwrap().to_string();
        generate(&[
            "--out".into(),
            path_s.clone(),
            "--model".into(),
            "erdos-renyi".into(),
            "--left".into(),
            "100".into(),
            "--right".into(),
            "100".into(),
            "--edges".into(),
            "400".into(),
        ])
        .unwrap();
        stats(&["--in".into(), path_s]).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_publish_answer() {
        let dir = std::env::temp_dir().join(format!("gdp-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt").to_str().unwrap().to_string();
        let artifact_path = dir.join("a.json").to_str().unwrap().to_string();
        let queries_path = dir.join("q.txt").to_str().unwrap().to_string();
        generate(&[
            "--out".into(),
            graph_path.clone(),
            "--model".into(),
            "erdos-renyi".into(),
            "--left".into(),
            "200".into(),
            "--right".into(),
            "200".into(),
            "--edges".into(),
            "1000".into(),
        ])
        .unwrap();
        publish(&[
            "--in".into(),
            graph_path,
            "--out".into(),
            artifact_path.clone(),
            "--dataset".into(),
            "cli-test".into(),
            "--epoch".into(),
            "3".into(),
            "--rounds".into(),
            "4".into(),
        ])
        .unwrap();
        std::fs::write(
            &queries_path,
            "# workload\nL 0 1 2\nR 10 11\nmass L 0\nhist L\ntotal R\n",
        )
        .unwrap();
        // Default level (finest allowed by the privilege), every variant.
        answer(&[
            "--artifact".into(),
            artifact_path.clone(),
            "--queries".into(),
            queries_path.clone(),
            "--privilege".into(),
            "2".into(),
        ])
        .unwrap();
        // The --query-type filter narrows the workload to one variant.
        answer(&[
            "--artifact".into(),
            artifact_path.clone(),
            "--queries".into(),
            queries_path.clone(),
            "--privilege".into(),
            "2".into(),
            "--query-type".into(),
            "hist".into(),
        ])
        .unwrap();
        assert!(answer(&[
            "--artifact".into(),
            artifact_path.clone(),
            "--queries".into(),
            queries_path.clone(),
            "--query-type".into(),
            "galaxy".into(),
        ])
        .is_err());
        // An explicit level finer than the privilege is refused.
        let err = answer(&[
            "--artifact".into(),
            artifact_path,
            "--queries".into(),
            queries_path,
            "--privilege".into(),
            "2".into(),
            "--level".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert!(err.contains("may not read"), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn publish_binary_convert_round_trip() {
        let dir = std::env::temp_dir().join(format!("gdp-cli-convert-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let graph_path = dir.join("g.txt").to_str().unwrap().to_string();
        let gda_path = dir.join("a.gda").to_str().unwrap().to_string();
        let json_path = dir.join("a.json").to_str().unwrap().to_string();
        let back_path = dir.join("back.gda").to_str().unwrap().to_string();
        let queries_path = dir.join("q.txt").to_str().unwrap().to_string();
        generate(&[
            "--out".into(),
            graph_path.clone(),
            "--model".into(),
            "erdos-renyi".into(),
            "--left".into(),
            "200".into(),
            "--right".into(),
            "200".into(),
            "--edges".into(),
            "1000".into(),
        ])
        .unwrap();
        // `--format bin` publishes a `.gda` container directly…
        publish(&[
            "--in".into(),
            graph_path.clone(),
            "--out".into(),
            gda_path.clone(),
            "--format".into(),
            "bin".into(),
            "--dataset".into(),
            "cli-bin".into(),
            "--rounds".into(),
            "4".into(),
        ])
        .unwrap();
        // …that answers through the single-artifact serving path.
        std::fs::write(&queries_path, "L 0 1 2\nmass L 0\ntotal R\n").unwrap();
        answer(&[
            "--artifact".into(),
            gda_path.clone(),
            "--queries".into(),
            queries_path,
            "--privilege".into(),
            "2".into(),
        ])
        .unwrap();
        // A --format that contradicts the extension is refused up
        // front, before any pipeline work runs.
        let err = publish(&[
            "--in".into(),
            graph_path,
            "--out".into(),
            json_path.clone(),
            "--format".into(),
            "bin".into(),
        ])
        .unwrap_err();
        assert!(err.contains("contradicts"), "unexpected error: {err}");
        // gda -> json -> gda preserves the artifact bit-for-bit: the
        // manifest chain survives both directions and the binary
        // encoding is deterministic.
        convert(&["--in".into(), gda_path.clone(), "--out".into(), json_path.clone()]).unwrap();
        convert(&["--in".into(), json_path, "--out".into(), back_path.clone()]).unwrap();
        assert_eq!(
            std::fs::read(&gda_path).unwrap(),
            std::fs::read(&back_path).unwrap(),
            "round-trip must reproduce the container bytes"
        );
        assert!(convert(&["--in".into(), gda_path, "--out".into(), "x.gda".into(), "--format".into(), "galaxy".into()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_answer_from_scanned_directory() {
        let dir = std::env::temp_dir().join(format!("gdp-cli-dir-{}", std::process::id()));
        let store_dir = dir.join("store");
        std::fs::create_dir_all(&store_dir).unwrap();
        let graph_path = dir.join("g.txt").to_str().unwrap().to_string();
        let queries_path = dir.join("q.txt").to_str().unwrap().to_string();
        generate(&[
            "--out".into(),
            graph_path.clone(),
            "--model".into(),
            "erdos-renyi".into(),
            "--left".into(),
            "200".into(),
            "--right".into(),
            "200".into(),
            "--edges".into(),
            "1000".into(),
        ])
        .unwrap();
        for epoch in ["1", "2"] {
            publish(&[
                "--in".into(),
                graph_path.clone(),
                "--out".into(),
                store_dir
                    .join(format!("e{epoch}.json"))
                    .to_str()
                    .unwrap()
                    .to_string(),
                "--dataset".into(),
                "cli-dir".into(),
                "--epoch".into(),
                epoch.into(),
                "--rounds".into(),
                "4".into(),
                "--seed".into(),
                epoch.into(),
            ])
            .unwrap();
        }
        std::fs::write(&queries_path, "L 0 1 2\nmass R 0\nhist L\ntotal L\n").unwrap();
        let store_dir_s = store_dir.to_str().unwrap().to_string();
        // Scanned store, dataset inferred (only one), epoch defaults to
        // the latest.
        answer(&[
            "--artifact-dir".into(),
            store_dir_s.clone(),
            "--queries".into(),
            queries_path.clone(),
            "--privilege".into(),
            "1".into(),
        ])
        .unwrap();
        // An explicit epoch is honored too.
        answer(&[
            "--artifact-dir".into(),
            store_dir_s.clone(),
            "--queries".into(),
            queries_path.clone(),
            "--epoch".into(),
            "1".into(),
        ])
        .unwrap();
        // Both sources at once is a usage error, as is an empty dir.
        assert!(answer(&[
            "--artifact-dir".into(),
            store_dir_s,
            "--artifact".into(),
            "x.json".into(),
            "--queries".into(),
            queries_path.clone(),
        ])
        .is_err());
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let err = answer(&[
            "--artifact-dir".into(),
            empty.to_str().unwrap().to_string(),
            "--queries".into(),
            queries_path,
        ])
        .unwrap_err();
        assert!(err.contains("no artifact"), "unexpected error: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_publish_gc_retention() {
        let dir = std::env::temp_dir().join(format!("gdp-cli-gc-{}", std::process::id()));
        let store_dir = dir.join("store");
        std::fs::create_dir_all(&store_dir).unwrap();
        let graph_path = dir.join("g.txt").to_str().unwrap().to_string();
        generate(&[
            "--out".into(),
            graph_path.clone(),
            "--model".into(),
            "erdos-renyi".into(),
            "--left".into(),
            "200".into(),
            "--right".into(),
            "200".into(),
            "--edges".into(),
            "1000".into(),
        ])
        .unwrap();
        let epoch_file = |epoch: &str| {
            store_dir
                .join(format!("e{epoch}.json"))
                .to_str()
                .unwrap()
                .to_string()
        };
        for epoch in ["1", "2", "3"] {
            publish(&[
                "--in".into(),
                graph_path.clone(),
                "--out".into(),
                epoch_file(epoch),
                "--dataset".into(),
                "cli-gc".into(),
                "--epoch".into(),
                epoch.into(),
                "--rounds".into(),
                "4".into(),
                "--seed".into(),
                epoch.into(),
            ])
            .unwrap();
        }
        let store_dir_s = store_dir.to_str().unwrap().to_string();
        // A policy is mandatory, and an unknown dataset is refused.
        assert!(gc(&["--artifact-dir".into(), store_dir_s.clone()]).is_err());
        assert!(gc(&[
            "--artifact-dir".into(),
            store_dir_s.clone(),
            "--keep-last".into(),
            "2".into(),
            "--dataset".into(),
            "galaxy".into(),
        ])
        .is_err());
        // Dry run plans but deletes nothing.
        gc(&[
            "--artifact-dir".into(),
            store_dir_s.clone(),
            "--keep-last".into(),
            "2".into(),
            "--dry-run".into(),
        ])
        .unwrap();
        for epoch in ["1", "2", "3"] {
            assert!(std::path::Path::new(&epoch_file(epoch)).exists());
        }
        // The real pass durably deletes only the superseded epoch.
        gc(&[
            "--artifact-dir".into(),
            store_dir_s.clone(),
            "--keep-last".into(),
            "2".into(),
        ])
        .unwrap();
        assert!(!std::path::Path::new(&epoch_file("1")).exists());
        assert!(std::path::Path::new(&epoch_file("2")).exists());
        assert!(std::path::Path::new(&epoch_file("3")).exists());
        // Crash debris next to committed epochs does not stop GC.
        std::fs::write(store_dir.join("torn.json.tmp"), "{ torn").unwrap();
        gc(&[
            "--artifact-dir".into(),
            store_dir_s,
            "--keep-last".into(),
            "1".into(),
        ])
        .unwrap();
        assert!(!std::path::Path::new(&epoch_file("2")).exists());
        assert!(std::path::Path::new(&epoch_file("3")).exists(), "newest survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_generate_stats_disclose() {
        let dir = std::env::temp_dir().join(format!("gdp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let path_s = path.to_str().unwrap().to_string();
        generate(&[
            "--out".into(),
            path_s.clone(),
            "--scale".into(),
            "tiny".into(),
        ])
        .unwrap();
        stats(&["--in".into(), path_s.clone()]).unwrap();
        disclose(&[
            "--in".into(),
            path_s,
            "--rounds".into(),
            "3".into(),
            "--strategy".into(),
            "median".into(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
