//! `gdp` — command-line driver for the group-dp workspace.
//!
//! ```text
//! gdp generate --out graph.txt [--model dblp|erdos-renyi|zipf|blocks]
//!              [--scale tiny|laptop|paper] [--seed N]
//!              [--left N] [--right N] [--edges N] [--per-right N]
//!              [--exponent S] [--blocks N] [--per-left N] [--intra P]
//! gdp stats    --in graph.txt
//! gdp disclose --in graph.txt [--rounds N] [--eps E] [--delta D]
//!              [--strategy exponential|median|random]
//!              [--mechanism gaussian|analytic|laplace|geometric]
//!              [--seed N] [--csv out.csv]
//! gdp publish  --in graph.txt --out artifact.json [--format json|bin]
//!              [--dataset NAME] [--epoch N] [--rounds N] [--eps E]
//!              [--delta D] [--budget-eps E] [--budget-delta D] [--seed N]
//!              [--deltas d1.txt[,d2.txt...] --out-dir DIR]
//! gdp convert  --in artifact.json --out artifact.gda [--format json|bin]
//! gdp answer   --artifact artifact.json --queries queries.txt
//!              [--privilege P] [--level L]
//! gdp serve    --artifact-dir DIR [--addr HOST:PORT] [--workers N]
//!              [--queue N] [--deadline-ms N] [--io-timeout-ms N]
//!              [--drain-ms N] [--cache-capacity N] [--port-file FILE]
//!              [--reload-interval-ms N]
//! gdp gc       --artifact-dir DIR (--keep-last N | --ttl-epochs T)
//!              [--dataset NAME] [--dry-run]
//! ```
//!
//! The default `dblp` model runs the serial DBLP-like generator; the
//! other three go through `gdp_datagen`'s parallel streaming engine.
//! `publish`/`answer` are the serving pair: one writes the sealed
//! release artifact — JSON for debugging and interop, or the `.gda`
//! binary container (`--format bin`) stores load fastest — the other
//! loads either format and answers subset-query workloads under a
//! privilege via `gdp_serve` (budget-free post-processing). `convert`
//! re-encodes an artifact between the two formats, preserving the
//! manifest and its content digest verbatim. `serve` keeps the same answering path up behind
//! `gdp_net`'s hardened HTTP frontend — bounded queue, deadlines,
//! supervised workers, graceful drain on `SIGINT`/`SIGTERM` — with
//! degraded directory opens, live hot-reload (`POST /v1/admin/reload`
//! or the `--reload-interval-ms` watcher) and quarantine for damaged
//! artifacts. `gc` applies a retention policy to the directory,
//! durably deleting superseded epochs.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) => c,
        None => {
            eprint!("{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    let rest: Vec<String> = args.collect();
    let result = match command.as_str() {
        "generate" => commands::generate(&rest),
        "stats" => commands::stats(&rest),
        "disclose" => commands::disclose(&rest),
        "publish" => commands::publish(&rest),
        "convert" => commands::convert(&rest),
        "answer" => commands::answer(&rest),
        "serve" => commands::serve(&rest),
        "gc" => commands::gc(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `gdp help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
