//! `gdp` — command-line driver for the group-dp workspace.
//!
//! ```text
//! gdp generate --out graph.txt [--scale tiny|laptop|paper] [--seed N]
//! gdp stats    --in graph.txt
//! gdp disclose --in graph.txt [--rounds N] [--eps E] [--delta D]
//!              [--strategy exponential|median|random]
//!              [--mechanism gaussian|analytic|laplace|geometric]
//!              [--seed N] [--csv out.csv]
//! ```

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let command = match args.next() {
        Some(c) => c,
        None => {
            eprint!("{}", commands::USAGE);
            return ExitCode::from(2);
        }
    };
    let rest: Vec<String> = args.collect();
    let result = match command.as_str() {
        "generate" => commands::generate(&rest),
        "stats" => commands::stats(&rest),
        "disclose" => commands::disclose(&rest),
        "help" | "--help" | "-h" => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `gdp help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
