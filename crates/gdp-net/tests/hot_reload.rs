//! Live store lifecycle through a real socket: admin reloads and the
//! supervised watcher pick up freshly published epochs *while serving*,
//! GC'd epochs retire into typed 404s, and reload failures degrade to
//! counters — the releases already held keep answering bit-for-bit.

mod common;

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gdp_graph::Side;
use gdp_net::{
    client, AnswerRequest, ErrorBody, FaultPlan, ReloadConfig, ReloadResponse, Server,
    ServerConfig, ServerHandle,
};
use gdp_serve::{AnswerService, Query, ReleaseStore};

const TIMEOUT: Duration = Duration::from_secs(5);

fn answer_body(dataset: &str, epoch: u64) -> String {
    serde_json::to_string(&AnswerRequest {
        dataset: dataset.to_string(),
        epoch,
        privilege: 0,
        level: 0,
        query: Query::SideTotal { side: Side::Left },
    })
    .unwrap()
}

fn error_kind(body: &[u8]) -> String {
    let parsed: ErrorBody = serde_json::from_str(std::str::from_utf8(body).unwrap()).unwrap();
    parsed.kind
}

/// A store directory holding `dblp` epochs 1 and 2, atomically written.
fn seed_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gdp-hot-reload-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    for epoch in [1, 2] {
        common::artifact("dblp", epoch)
            .save_atomic(dir.join(format!("dblp-e{epoch}.json")))
            .unwrap();
    }
    dir
}

/// Starts a server over a degraded open of `dir` with `reload`.
fn start_dir_server(dir: &Path, reload: ReloadConfig) -> ServerHandle {
    let (store, report) = ReleaseStore::open_dir_report(dir).unwrap();
    assert_eq!(report.quarantined(), 0, "seed dir must be clean: {report:?}");
    let config = ServerConfig {
        reload,
        ..common::test_config()
    };
    Server::start(
        Arc::new(AnswerService::new(store)),
        config,
        FaultPlan::none(),
    )
    .expect("bind hot-reload test server")
}

#[test]
fn admin_reload_under_traffic_serves_old_and_new_epochs() {
    let dir = seed_dir("admin");
    let handle = start_dir_server(&dir, ReloadConfig::manual(&dir));
    let addr = handle.addr();

    // Continuous traffic against the already-served epochs while the
    // third is published and hot-loaded: every response must be inside
    // the typed taxonomy, and since these queries are all valid, that
    // means 200 — a reload never costs a request.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic: Vec<_> = (0..2)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || -> Result<u64, String> {
                let body = answer_body("dblp", 1 + worker as u64 % 2);
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let response = client::post_json(addr, "/v1/answer", &body, TIMEOUT)
                        .map_err(|e| format!("transport error mid-reload: {e:?}"))?;
                    if response.status != 200 {
                        return Err(format!(
                            "non-taxonomy failure: {} ({})",
                            response.status,
                            error_kind(&response.body)
                        ));
                    }
                    served += 1;
                }
                Ok(served)
            })
        })
        .collect();

    // Publish epoch 3 mid-flight, then reload on demand.
    common::artifact("dblp", 3)
        .save_atomic(dir.join("dblp-e3.json"))
        .unwrap();
    let response = client::post_json(addr, "/v1/admin/reload", "", TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let reload: ReloadResponse =
        serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(reload.report.loaded(), 1, "{}", reload.summary);
    assert_eq!(reload.report.already_registered(), 2, "{}", reload.summary);

    // The fresh epoch answers immediately; a served epoch still does.
    for epoch in [3, 1] {
        let response =
            client::post_json(addr, "/v1/answer", &answer_body("dblp", epoch), TIMEOUT).unwrap();
        assert_eq!(response.status, 200, "epoch {epoch} after reload");
    }

    stop.store(true, Ordering::SeqCst);
    for thread in traffic {
        let served = thread.join().unwrap().expect("traffic stayed clean");
        assert!(served > 0, "traffic thread never got a request through");
    }

    // The store section accounts for the whole lifecycle.
    let stats = handle.stats();
    assert_eq!(stats.store.datasets, 1);
    assert_eq!(stats.store.epochs, 3);
    assert_eq!(stats.store.reload_attempts, 1);
    assert_eq!(stats.store.reload_failures, 0);
    assert_eq!(stats.store.epochs_loaded_live, 1);
    assert!(stats.store.last_reload.starts_with("ok: "), "{}", stats.store.last_reload);
    assert!(!stats.store.watcher_alive, "manual config must not spawn a watcher");

    assert!(handle.join().clean);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watcher_auto_loads_new_epochs_and_is_counted() {
    let dir = seed_dir("watcher");
    let handle = start_dir_server(&dir, ReloadConfig::watch(&dir, Duration::from_millis(25)));
    let addr = handle.addr();
    common::wait_for(&handle, "watcher alive", |s| s.store.watcher_alive);

    common::artifact("dblp", 3)
        .save_atomic(dir.join("dblp-e3.json"))
        .unwrap();
    common::wait_for(&handle, "watcher to pick up epoch 3", |s| s.store.epochs == 3);
    let response =
        client::post_json(addr, "/v1/answer", &answer_body("dblp", 3), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);

    // Deleting a backing file retires its release on the next sweep —
    // consumers get the typed 404, not stale answers.
    std::fs::remove_file(dir.join("dblp-e1.json")).unwrap();
    common::wait_for(&handle, "watcher to retire epoch 1", |s| s.store.epochs == 2);
    let response =
        client::post_json(addr, "/v1/answer", &answer_body("dblp", 1), TIMEOUT).unwrap();
    assert_eq!(response.status, 404);
    assert_eq!(error_kind(&response.body), "unknown_release");

    let stats = handle.stats();
    assert!(stats.store.reload_attempts >= 2, "{stats:?}");
    assert_eq!(stats.store.epochs_loaded_live, 1);
    assert_eq!(stats.store.epochs_retired, 1);

    let report = handle.join();
    assert!(report.clean);
    assert!(!report.stats.store.watcher_alive, "watcher must exit on drain");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reload_without_directory_is_a_typed_400() {
    // The stock test server holds a programmatic store: nothing to
    // reload from, and the endpoint says so instead of 404ing.
    let handle = common::start(common::test_config(), FaultPlan::none());
    let response = client::post_json(handle.addr(), "/v1/admin/reload", "", TIMEOUT).unwrap();
    assert_eq!(response.status, 400);
    assert_eq!(error_kind(&response.body), "reload_unavailable");
    let stats = handle.stats();
    assert_eq!(stats.store.reload_attempts, 0);
    assert_eq!(stats.store.last_reload, "never");
    assert!(handle.join().clean);
}

#[test]
fn reload_failure_degrades_while_serving_continues() {
    let dir = seed_dir("degrade");
    let handle = start_dir_server(&dir, ReloadConfig::manual(&dir));
    let addr = handle.addr();

    // Vandalize one artifact in place: the reload quarantines it, the
    // already-validated in-memory copy keeps serving.
    std::fs::write(dir.join("dblp-e2.json"), "{ vandalized").unwrap();
    let response = client::post_json(addr, "/v1/admin/reload", "", TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let reload: ReloadResponse =
        serde_json::from_str(std::str::from_utf8(&response.body).unwrap()).unwrap();
    assert_eq!(reload.report.quarantined(), 1, "{}", reload.summary);
    let response =
        client::post_json(addr, "/v1/answer", &answer_body("dblp", 2), TIMEOUT).unwrap();
    assert_eq!(response.status, 200, "vandalized epoch keeps serving from memory");

    // Losing the directory wholesale is the unrecoverable shape: a
    // typed 500, a failure counter — and serving still continues.
    std::fs::remove_dir_all(&dir).unwrap();
    let response = client::post_json(addr, "/v1/admin/reload", "", TIMEOUT).unwrap();
    assert_eq!(response.status, 500);
    assert_eq!(error_kind(&response.body), "reload_failed");
    let stats = handle.stats();
    assert_eq!(stats.store.reload_attempts, 2);
    assert_eq!(stats.store.reload_failures, 1);
    assert_eq!(stats.store.quarantined, 1);
    assert!(
        stats.store.last_reload.starts_with("failed: "),
        "{}",
        stats.store.last_reload
    );
    for epoch in [1, 2] {
        let response =
            client::post_json(addr, "/v1/answer", &answer_body("dblp", epoch), TIMEOUT).unwrap();
        assert_eq!(response.status, 200, "epoch {epoch} survives a dead directory");
    }
    assert!(handle.join().clean);
    std::fs::remove_dir_all(&dir).ok();
}
