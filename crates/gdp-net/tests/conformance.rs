//! Serving conformance through a real socket: every HTTP answer must be
//! bit-identical to a direct [`AnswerService`] call, and every error
//! must carry its documented status and stable kind.

mod common;

use std::time::Duration;

use gdp_graph::Side;
use gdp_core::Privilege;
use gdp_net::{
    client, AnswerRequest, AnswerResponse, BatchAnswerRequest, BatchAnswerResponse, ErrorBody,
    FaultPlan, ReleasesResponse, StatsSnapshot,
};
use gdp_serve::{Query, SubsetQuery, TypedAnswer};

const TIMEOUT: Duration = Duration::from_secs(5);

fn variants() -> Vec<Query> {
    vec![
        Query::SubsetCount(SubsetQuery {
            side: Side::Left,
            nodes: vec![0, 3, 7, 11],
        }),
        Query::GroupMass {
            side: Side::Right,
            group: 0,
        },
        Query::DegreeHistogram { side: Side::Left },
        Query::SideTotal { side: Side::Right },
    ]
}

fn assert_bits_equal(got: &TypedAnswer, want: &TypedAnswer, context: &str) {
    match (got, want) {
        (TypedAnswer::Scalar(g), TypedAnswer::Scalar(w)) => {
            assert_eq!(g.to_bits(), w.to_bits(), "{context}: scalar bits differ");
        }
        (TypedAnswer::Histogram(g), TypedAnswer::Histogram(w)) => {
            assert_eq!(g.len(), w.len(), "{context}: bin count differs");
            for (i, (gb, wb)) in g.iter().zip(w.iter()).enumerate() {
                assert_eq!(gb.to_bits(), wb.to_bits(), "{context}: bin {i} bits differ");
            }
        }
        _ => panic!("{context}: answer shapes differ ({got:?} vs {want:?})"),
    }
}

#[test]
fn http_answers_are_bit_identical_to_direct_calls() {
    let service = common::service();
    let handle = common::start(common::test_config(), FaultPlan::none());
    let levels = service.store().get("dblp", 4).unwrap().level_count();

    for level in 0..levels {
        for query in variants() {
            let direct = service
                .answer_typed("dblp", 4, Privilege::new(0), level, &query)
                .unwrap();
            let body = serde_json::to_string(&AnswerRequest {
                dataset: "dblp".to_string(),
                epoch: 4,
                privilege: 0,
                level,
                query: query.clone(),
            })
            .unwrap();
            let response = client::post_json(handle.addr(), "/v1/answer", &body, TIMEOUT).unwrap();
            assert_eq!(response.status, 200, "level {level} {}", query.name());
            let parsed: AnswerResponse =
                serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
            let served: TypedAnswer = parsed.answer.into();
            assert_bits_equal(
                &served,
                &direct,
                &format!("level {level} {}", query.name()),
            );
        }
    }

    handle.shutdown();
    assert!(handle.join().clean);
}

#[test]
fn batch_answers_match_direct_batch_in_order() {
    let service = common::service();
    let handle = common::start(common::test_config(), FaultPlan::none());

    let queries = variants();
    let direct = service
        .answer_typed_batch("dblp", 4, Privilege::new(0), 1, &queries)
        .unwrap();
    let body = serde_json::to_string(&BatchAnswerRequest {
        dataset: "dblp".to_string(),
        epoch: 4,
        privilege: 0,
        level: 1,
        queries: queries.clone(),
    })
    .unwrap();
    let response = client::post_json(handle.addr(), "/v1/answer_batch", &body, TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let parsed: BatchAnswerResponse =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(parsed.answers.len(), direct.len());
    for (i, (wire, want)) in parsed.answers.into_iter().zip(direct.iter()).enumerate() {
        let served: TypedAnswer = wire.into();
        assert_bits_equal(&served, want, &format!("batch slot {i}"));
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let handle = common::start(common::test_config(), FaultPlan::none());
    let mut conn = client::ClientConn::connect(handle.addr(), TIMEOUT).unwrap();
    for epoch_probe in 0..20u64 {
        let body = serde_json::to_string(&AnswerRequest {
            dataset: "dblp".to_string(),
            epoch: 4,
            privilege: 0,
            level: (epoch_probe % 3) as usize,
            query: Query::SideTotal { side: Side::Left },
        })
        .unwrap();
        let response = conn
            .send("POST", "/v1/answer", Some(body.as_bytes()))
            .unwrap();
        assert_eq!(response.status, 200, "request {epoch_probe}");
        assert_eq!(response.header("connection"), Some("keep-alive"));
    }
    // All twenty requests rode a single accepted connection. (The
    // completion counter ticks just after the response bytes land, so
    // poll rather than race it.)
    common::wait_for(&handle, "20 completions", |s| s.completed == 20);
    assert_eq!(handle.stats().accepted, 1);
    // Hang up before draining so the worker sees EOF, not a read stall.
    drop(conn);
    handle.shutdown();
    handle.join();
}

#[test]
fn error_taxonomy_holds_through_the_socket() {
    let handle = common::start(common::test_config(), FaultPlan::none());
    let addr = handle.addr();
    let answer = |dataset: &str, epoch: u64, privilege: usize, level: usize, query: Query| {
        let body = serde_json::to_string(&AnswerRequest {
            dataset: dataset.to_string(),
            epoch,
            privilege,
            level,
            query,
        })
        .unwrap();
        let response = client::post_json(addr, "/v1/answer", &body, TIMEOUT).unwrap();
        let parsed: ErrorBody =
            serde_json::from_str(&String::from_utf8(response.body.clone()).unwrap()).unwrap();
        (response.status, parsed.kind)
    };

    let side_total = Query::SideTotal { side: Side::Left };
    // Privilege 2 asking for level 0 (finer than allowed): denied.
    assert_eq!(
        answer("dblp", 4, 2, 0, side_total.clone()),
        (403, "access_denied".to_string())
    );
    // Unknown dataset and unknown epoch: never published.
    assert_eq!(
        answer("movies", 4, 0, 0, side_total.clone()),
        (404, "unknown_release".to_string())
    );
    assert_eq!(
        answer("dblp", 99, 0, 0, side_total.clone()),
        (404, "unknown_release".to_string())
    );
    // Level beyond the hierarchy: out of range.
    assert_eq!(
        answer("dblp", 4, 0, 99, side_total),
        (404, "level_out_of_range".to_string())
    );
    // A node id past the side's size: the query itself is bad.
    assert_eq!(
        answer(
            "dblp",
            4,
            0,
            0,
            Query::SubsetCount(SubsetQuery {
                side: Side::Left,
                nodes: vec![u32::MAX],
            })
        ),
        (400, "bad_query".to_string())
    );

    // Unparseable body and unknown route.
    let response = client::post_json(addr, "/v1/answer", "{not json", TIMEOUT).unwrap();
    assert_eq!(response.status, 400);
    let parsed: ErrorBody =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(parsed.kind, "bad_json");
    let response = client::get(addr, "/nope", TIMEOUT).unwrap();
    assert_eq!(response.status, 404);

    handle.shutdown();
    handle.join();
}

#[test]
fn health_stats_and_releases_report_the_serving_state() {
    let handle = common::start(common::test_config(), FaultPlan::none());
    let addr = handle.addr();

    let response = client::get(addr, "/health", TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    assert!(String::from_utf8(response.body).unwrap().contains("\"ok\""));

    // The release listing carries everything needed to build queries.
    let response = client::get(addr, "/v1/releases", TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let listing: ReleasesResponse =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(listing.releases.len(), 1);
    let info = &listing.releases[0];
    assert_eq!((info.dataset.as_str(), info.epoch), ("dblp", 4));
    assert!(info.levels >= 2);
    assert!(info.left_nodes > 0 && info.right_nodes > 0);
    assert_eq!(info.left_groups.len(), info.levels);
    assert_eq!(info.right_groups.len(), info.levels);
    // Coarser levels never have more groups than finer ones.
    for w in info.left_groups.windows(2) {
        assert!(w[0] >= w[1] || w[1] == 0);
    }

    // Serve one of each variant, then check /stats adds up.
    for query in variants() {
        let body = serde_json::to_string(&AnswerRequest {
            dataset: "dblp".to_string(),
            epoch: 4,
            privilege: 0,
            level: 0,
            query,
        })
        .unwrap();
        assert_eq!(
            client::post_json(addr, "/v1/answer", &body, TIMEOUT)
                .unwrap()
                .status,
            200
        );
    }
    let response = client::get(addr, "/stats", TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    let stats: StatsSnapshot =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(stats.status, "ok");
    assert_eq!(stats.per_variant.subset_count, 1);
    assert_eq!(stats.per_variant.group_mass, 1);
    assert_eq!(stats.per_variant.degree_histogram, 1);
    assert_eq!(stats.per_variant.side_total, 1);
    assert_eq!(stats.cache.misses, 4);
    assert_eq!(stats.cache.entries, 4);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.queue_capacity, 16);
    // The /stats GET itself is still in flight while snapshotting.
    assert!(stats.in_flight >= 1);

    handle.shutdown();
    let report = handle.join();
    assert!(report.clean);
    assert_eq!(report.abandoned_workers, 0);
    assert_eq!(report.abandoned_queue, 0);
}

#[test]
fn oversized_bodies_are_refused_with_413() {
    let mut config = common::test_config();
    config.max_body_bytes = 256;
    let handle = common::start(config, FaultPlan::none());
    let huge = format!("{{\"pad\":\"{}\"}}", "x".repeat(1024));
    let response = client::post_json(handle.addr(), "/v1/answer", &huge, TIMEOUT).unwrap();
    assert_eq!(response.status, 413);
    common::wait_for(&handle, "bad_requests", |s| s.bad_requests == 1);
    handle.shutdown();
    handle.join();
}
