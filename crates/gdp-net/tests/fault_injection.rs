//! Deterministic degradation-mode tests: every way the frontend can
//! degrade — queue overflow, deadline expiry, slow-loris stalls, worker
//! panics, injected artifact failures, shutdown mid-flight — is forced
//! with the fault plan and pinned to its documented behavior.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use gdp_graph::Side;
use gdp_net::{
    client, AnswerRequest, ErrorBody, FaultAction, FaultPlan, Gate, HttpError,
};
use gdp_serve::Query;

const TIMEOUT: Duration = Duration::from_secs(5);

fn answer_body(dataset: &str) -> String {
    serde_json::to_string(&AnswerRequest {
        dataset: dataset.to_string(),
        epoch: 4,
        privilege: 0,
        level: 0,
        query: Query::SideTotal { side: Side::Left },
    })
    .unwrap()
}

fn error_kind(body: &[u8]) -> String {
    let parsed: ErrorBody = serde_json::from_str(std::str::from_utf8(body).unwrap()).unwrap();
    parsed.kind
}

#[test]
fn queue_overflow_is_refused_with_503_and_retry_after() {
    let gate = Gate::new();
    let faults = FaultPlan::none();
    faults.set("dblp", FaultAction::Hold(gate.clone()));
    let mut config = common::test_config();
    config.workers = 1;
    config.queue_capacity = 1;
    let handle = common::start(config, faults);
    let addr = handle.addr();

    // A occupies the single worker (held open by the gate).
    let a = std::thread::spawn(move || {
        client::post_json(addr, "/v1/answer", &answer_body("dblp"), Duration::from_secs(10))
    });
    common::wait_for(&handle, "held request in flight", |s| s.in_flight == 1);

    // B fills the single queue slot.
    let b = std::thread::spawn(move || {
        client::post_json(addr, "/v1/answer", &answer_body("dblp"), Duration::from_secs(10))
    });
    common::wait_for(&handle, "queued connection", |s| s.queue_depth == 1);

    // C overflows: an immediate 503 with the Retry-After hint, straight
    // from the acceptor — no unbounded buffering, no silent stall.
    let refused = client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert_eq!(error_kind(&refused.body), "overloaded");
    assert_eq!(handle.stats().rejected_overflow, 1);

    // Releasing the gate drains A then B in order, both successfully.
    gate.open();
    assert_eq!(a.join().unwrap().unwrap().status, 200);
    assert_eq!(b.join().unwrap().unwrap().status, 200);

    let report = handle.join();
    assert!(report.clean, "{report:?}");
    assert_eq!(report.stats.completed, 2);
    assert_eq!(report.stats.rejected_overflow, 1);
}

#[test]
fn backoff_client_rides_out_backpressure() {
    let gate = Gate::new();
    let faults = FaultPlan::none();
    faults.set("dblp", FaultAction::Hold(gate.clone()));
    let mut config = common::test_config();
    config.workers = 1;
    config.queue_capacity = 1;
    let handle = common::start(config, faults);
    let addr = handle.addr();

    let a = std::thread::spawn(move || {
        client::post_json(addr, "/v1/answer", &answer_body("dblp"), Duration::from_secs(10))
    });
    common::wait_for(&handle, "held request in flight", |s| s.in_flight == 1);
    let b = std::thread::spawn(move || {
        client::post_json(addr, "/v1/answer", &answer_body("dblp"), Duration::from_secs(10))
    });
    common::wait_for(&handle, "queued connection", |s| s.queue_depth == 1);

    // The gate opens shortly; until then every fresh attempt is a 503,
    // and the backoff client keeps retrying instead of failing.
    let opener = {
        let gate = gate.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            gate.open();
        })
    };
    let (response, retries) = client::with_backoff(
        || client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT),
        20,
        Duration::from_millis(25),
        42,
    )
    .unwrap();
    assert_eq!(response.status, 200);
    assert!(retries >= 1, "expected at least one 503 retry, got {retries}");

    opener.join().unwrap();
    assert_eq!(a.join().unwrap().unwrap().status, 200);
    assert_eq!(b.join().unwrap().unwrap().status, 200);
    assert!(handle.join().clean);
}

#[test]
fn injected_delay_expires_the_request_deadline() {
    let faults = FaultPlan::none();
    faults.set("dblp", FaultAction::Delay(Duration::from_millis(300)));
    let mut config = common::test_config();
    config.request_deadline = Duration::from_millis(100);
    let handle = common::start(config, faults.clone());
    let addr = handle.addr();

    let response = client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
    assert_eq!(response.status, 504);
    assert_eq!(error_kind(&response.body), "deadline_exceeded");
    assert_eq!(handle.stats().deadline_expired, 1);

    // The expiry is per-request: with the fault cleared, the very next
    // request answers normally.
    faults.clear("dblp");
    let response = client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    assert!(handle.join().clean);
}

#[test]
fn injected_artifact_failure_is_a_typed_500() {
    let faults = FaultPlan::none();
    faults.set(
        "dblp",
        FaultAction::Fail("artifact shard went unreadable".to_string()),
    );
    let handle = common::start(common::test_config(), faults.clone());
    let addr = handle.addr();

    let response = client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
    assert_eq!(response.status, 500);
    assert_eq!(error_kind(&response.body), "fault_injected");

    faults.clear("dblp");
    let response = client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    assert!(handle.join().clean);
}

#[test]
fn slow_loris_connections_are_dropped_on_the_read_timeout() {
    let mut config = common::test_config();
    config.io_timeout = Duration::from_millis(150);
    let handle = common::start(config, FaultPlan::none());
    let addr = handle.addr();

    // Feed a partial request line, then stall. The server must reclaim
    // the worker after its read timeout instead of waiting forever.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"POST /v1/answer HTT").unwrap();
    stream.flush().unwrap();
    common::wait_for(&handle, "slow-loris drop", |s| s.io_timeouts == 1);

    // The server hung up on us...
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut sink = Vec::new();
    assert_eq!(stream.read_to_end(&mut sink).unwrap_or(0), 0);

    // ...and still answers well-behaved clients.
    let response = client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    assert!(handle.join().clean);
}

#[test]
fn worker_panics_are_supervised_and_respawned() {
    let faults = FaultPlan::none();
    faults.set("boom", FaultAction::Panic);
    let handle = common::start(common::test_config(), faults);
    let addr = handle.addr();

    for round in 1..=3u64 {
        // The panicking request loses its own connection (the server is
        // mid-unwind, so nothing is written back)...
        let got = client::post_json(addr, "/v1/answer", &answer_body("boom"), TIMEOUT);
        assert!(
            matches!(got, Err(HttpError::Closed) | Err(HttpError::Io(_))),
            "round {round}: expected a dropped connection, got {got:?}"
        );
        // ...the supervisor counts the panic and respawns the pool...
        common::wait_for(&handle, "respawned worker", |s| {
            s.worker_panics == round && s.worker_restarts == round && s.workers == 2
        });
        // ...and the service keeps answering.
        let response =
            client::post_json(addr, "/v1/answer", &answer_body("dblp"), TIMEOUT).unwrap();
        assert_eq!(response.status, 200, "round {round}");
    }

    // The in-flight gauge was unwound correctly every time.
    let stats = handle.stats();
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.worker_panics, 3);
    assert_eq!(stats.worker_restarts, 3);
    assert!(handle.join().clean);
}

#[test]
fn graceful_shutdown_drains_in_flight_and_refuses_new_connections() {
    let gate = Gate::new();
    let faults = FaultPlan::none();
    faults.set("dblp", FaultAction::Hold(gate.clone()));
    let handle = common::start(common::test_config(), faults);
    let addr = handle.addr();

    let held = std::thread::spawn(move || {
        client::post_json(addr, "/v1/answer", &answer_body("dblp"), Duration::from_secs(10))
    });
    common::wait_for(&handle, "held request in flight", |s| s.in_flight == 1);

    handle.shutdown();
    assert!(handle.is_draining());

    // New connections are refused once the acceptor has stopped (the
    // listener is gone, or a straggler is dropped unanswered).
    let refused_deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if client::get(addr, "/health", Duration::from_millis(250)).is_err() {
            break;
        }
        assert!(
            std::time::Instant::now() < refused_deadline,
            "acceptor kept serving after shutdown"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The accepted in-flight request still completes — with the server
    // announcing the connection close.
    gate.open();
    let response = held.join().unwrap().unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));

    let report = handle.join();
    assert!(report.clean, "{report:?}");
    assert_eq!(report.abandoned_workers, 0);
    assert_eq!(report.abandoned_queue, 0);
    assert_eq!(report.stats.status, "draining");
    assert!(report.stats.completed >= 1);
}

#[test]
fn shutdown_endpoint_triggers_the_same_drain() {
    let handle = common::start(common::test_config(), FaultPlan::none());
    let addr = handle.addr();

    let response = client::post_json(addr, "/shutdown", "", TIMEOUT).unwrap();
    assert_eq!(response.status, 200);
    assert!(String::from_utf8(response.body)
        .unwrap()
        .contains("draining"));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !handle.is_draining() {
        assert!(std::time::Instant::now() < deadline, "drain flag never set");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.join().clean);
}
