//! Shared fixture: a real answering service behind a real socket.

use std::sync::Arc;
use std::time::Duration;

use gdp_core::{
    DisclosureConfig, MultiLevelDiscloser, Query as CoreQuery, ReleaseArtifact,
    SpecializationConfig, Specializer,
};
use gdp_datagen::{DblpConfig, DblpGenerator};
use gdp_net::{FaultPlan, Server, ServerConfig, ServerHandle};
use gdp_serve::{AnswerService, IndexedRelease, ReleaseStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A sealed release over a tiny deterministic graph.
pub fn artifact(dataset: &str, epoch: u64) -> ReleaseArtifact {
    let mut rng = StdRng::seed_from_u64(90);
    let graph = DblpGenerator::new(DblpConfig::tiny()).generate(&mut rng);
    let hierarchy = Specializer::new(SpecializationConfig::median(3).unwrap())
        .specialize(&graph, &mut rng)
        .unwrap();
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.9, 1e-6)
            .unwrap()
            .with_queries(vec![
                CoreQuery::PerGroupCounts,
                CoreQuery::LeftDegreeHistogram { max_degree: 12 },
            ]),
    )
    .disclose(&graph, &hierarchy, &mut rng)
    .unwrap();
    ReleaseArtifact::seal(dataset, epoch, hierarchy, release).unwrap()
}

/// An [`AnswerService`] holding `dblp` epoch 4.
pub fn service() -> Arc<AnswerService> {
    let store = ReleaseStore::new();
    store
        .insert(IndexedRelease::new(artifact("dblp", 4)).unwrap())
        .unwrap();
    Arc::new(AnswerService::new(store))
}

/// A config sized for fast tests: small pool, tight-but-not-flaky
/// timeouts.
pub fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        request_deadline: Duration::from_secs(5),
        io_timeout: Duration::from_secs(5),
        drain_deadline: Duration::from_secs(5),
        retry_after_secs: 1,
        max_body_bytes: 1 << 20,
        max_requests_per_connection: 1000,
        reload: gdp_net::ReloadConfig::default(),
    }
}

/// Starts a server over [`service`] with `config` and `faults`.
pub fn start(config: ServerConfig, faults: FaultPlan) -> ServerHandle {
    Server::start(service(), config, faults).expect("bind test server")
}

/// Polls `predicate` against the handle's stats until it holds or 5 s
/// pass (fails the test on timeout).
pub fn wait_for<F: Fn(&gdp_net::StatsSnapshot) -> bool>(handle: &ServerHandle, what: &str, predicate: F) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if predicate(&handle.stats()) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}: {:?}",
            handle.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}
