//! Minimal Unix signal hook: `SIGINT`/`SIGTERM` set a process-wide
//! flag the serve loop polls to begin a graceful drain.
//!
//! The workspace builds offline with no `libc` crate, so the handler is
//! registered through a direct `signal(2)` FFI declaration — the one
//! place in the workspace that needs `unsafe`, confined to this module
//! and compiled only on Unix. The handler itself just stores a relaxed
//! atomic flag, which is async-signal-safe.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since [`install`].
pub fn shutdown_requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Marks shutdown as requested (what the signal handler does; public so
/// non-Unix builds and tests can trigger the same path).
pub fn request_shutdown() {
    REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    extern "C" fn handler(_signum: i32) {
        super::request_shutdown();
    }

    extern "C" {
        // POSIX `signal(2)`. The return value (the previous handler) is
        // pointer-sized; it is ignored here.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }

    /// Registers the flag-setting handler for `SIGINT` (2) and
    /// `SIGTERM` (15).
    pub fn install() {
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-Unix targets; callers can still use
    /// [`super::request_shutdown`].
    pub fn install() {}
}

/// Installs the `SIGINT`/`SIGTERM` handler (no-op off Unix). Call once
/// before the serve loop; poll [`shutdown_requested`] afterwards.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_flips_the_flag() {
        install();
        assert!(!shutdown_requested() || cfg!(test));
        request_shutdown();
        assert!(shutdown_requested());
    }
}
