//! Live store reload: configuration, counters and the `/stats` store
//! section for the supervised directory watcher and the
//! `POST /v1/admin/reload` admin endpoint.
//!
//! The paper's deployment is recurring disclosure — a publisher drops a
//! new epoch into the artifact directory while the previous ones are
//! being served. The frontend picks those up without a restart: a
//! watcher thread (or an admin request) re-scans the directory through
//! [`ReleaseStore::merge_dir`](gdp_serve::ReleaseStore::merge_dir),
//! which registers fresh epochs, quarantines damage, and retires
//! releases whose files were reclaimed by GC. A reload can only
//! *degrade* — every failure lands in a typed error and a counter, the
//! releases already being served stay untouched.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use gdp_serve::OpenReport;

/// How (and whether) a server keeps its release store in sync with the
/// artifact directory it was opened from.
#[derive(Debug, Clone, Default)]
pub struct ReloadConfig {
    /// The artifact directory to re-scan. `None` disables both the
    /// watcher and `POST /v1/admin/reload` (the endpoint answers `400
    /// reload_unavailable`).
    pub dir: Option<PathBuf>,
    /// Watcher poll interval. `None` leaves reloads admin-triggered
    /// only; the watcher backs off exponentially while reloads fail
    /// (see [`watcher_backoff`]).
    pub interval: Option<Duration>,
    /// Files the *initial* directory open already quarantined, so the
    /// `/stats` quarantine counter covers the store's whole history,
    /// not just reloads.
    pub initial_quarantined: u64,
}

impl ReloadConfig {
    /// Watch `dir`, rescanning every `interval`.
    pub fn watch(dir: impl Into<PathBuf>, interval: Duration) -> Self {
        Self {
            dir: Some(dir.into()),
            interval: Some(interval),
            initial_quarantined: 0,
        }
    }

    /// Allow `POST /v1/admin/reload` against `dir` without a watcher.
    pub fn manual(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
            interval: None,
            initial_quarantined: 0,
        }
    }
}

/// The watcher's sleep before its next scan: the configured interval
/// while reloads succeed, doubling per consecutive failure (capped at
/// `32 ×` the interval) so a persistently broken directory is polled
/// gently instead of hammered.
pub fn watcher_backoff(interval: Duration, consecutive_failures: u32) -> Duration {
    interval.saturating_mul(1u32 << consecutive_failures.min(5))
}

/// Live reload counters, shared between the watcher thread, the admin
/// endpoint and `/stats` snapshots. All writes are monotonic counter
/// bumps plus one mutex-guarded "last outcome" record.
#[derive(Debug)]
pub struct ReloadState {
    /// Reload scans started (watcher and admin combined).
    pub attempts: AtomicU64,
    /// Reload scans that returned a typed error.
    pub failures: AtomicU64,
    /// Epochs registered by reloads (excludes the initial open).
    pub epochs_loaded_live: AtomicU64,
    /// Releases retired by reloads (backing file deleted on disk).
    pub epochs_retired: AtomicU64,
    /// Damaged files quarantined over the store's lifetime (seeded with
    /// the initial open's count, grown by reload scans).
    pub quarantined: AtomicU64,
    /// `1` while the watcher thread is alive, `0` otherwise.
    pub watcher_alive: AtomicU64,
    /// Watcher threads respawned by the supervisor after a panic.
    pub watcher_restarts: AtomicU64,
    last: Mutex<LastReload>,
}

#[derive(Debug, Default)]
struct LastReload {
    /// `None` before the first reload; then `(succeeded, rendered)`.
    outcome: Option<(bool, String)>,
    uptime_ms: u64,
}

impl ReloadState {
    /// Fresh counters; `initial_quarantined` seeds the quarantine
    /// total with what the initial directory open already moved.
    pub fn new(initial_quarantined: u64) -> Self {
        Self {
            attempts: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            epochs_loaded_live: AtomicU64::new(0),
            epochs_retired: AtomicU64::new(0),
            quarantined: AtomicU64::new(initial_quarantined),
            watcher_alive: AtomicU64::new(0),
            watcher_restarts: AtomicU64::new(0),
            last: Mutex::new(LastReload::default()),
        }
    }

    /// Records one successful reload scan at `uptime_ms`.
    pub fn record_ok(&self, report: &OpenReport, uptime_ms: u64) {
        self.epochs_loaded_live
            .fetch_add(report.loaded() as u64, Ordering::Relaxed);
        self.epochs_retired
            .fetch_add(report.retired() as u64, Ordering::Relaxed);
        self.quarantined
            .fetch_add(report.quarantined() as u64, Ordering::Relaxed);
        *self.last.lock().unwrap_or_else(PoisonError::into_inner) = LastReload {
            outcome: Some((true, report.summary())),
            uptime_ms,
        };
    }

    /// Records one failed reload scan at `uptime_ms`.
    pub fn record_err(&self, rendered: &str, uptime_ms: u64) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        *self.last.lock().unwrap_or_else(PoisonError::into_inner) = LastReload {
            outcome: Some((false, rendered.to_string())),
            uptime_ms,
        };
    }

    /// The `/stats` store section. `datasets` and `epochs` describe the
    /// store's current contents (the counters here only describe its
    /// history).
    pub fn snapshot(&self, datasets: usize, epochs: usize) -> StoreSnapshot {
        let last = self.last.lock().unwrap_or_else(PoisonError::into_inner);
        let (last_reload, last_reload_uptime_ms) = match &last.outcome {
            None => ("never".to_string(), 0),
            Some((true, summary)) => (format!("ok: {summary}"), last.uptime_ms),
            Some((false, err)) => (format!("failed: {err}"), last.uptime_ms),
        };
        StoreSnapshot {
            datasets,
            epochs,
            quarantined: self.quarantined.load(Ordering::Relaxed),
            reload_attempts: self.attempts.load(Ordering::Relaxed),
            reload_failures: self.failures.load(Ordering::Relaxed),
            epochs_loaded_live: self.epochs_loaded_live.load(Ordering::Relaxed),
            epochs_retired: self.epochs_retired.load(Ordering::Relaxed),
            last_reload,
            last_reload_uptime_ms,
            watcher_alive: self.watcher_alive.load(Ordering::SeqCst) > 0,
            watcher_restarts: self.watcher_restarts.load(Ordering::Relaxed),
        }
    }
}

/// The store-lifecycle section of [`StatsSnapshot`](crate::StatsSnapshot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// Distinct datasets currently served.
    pub datasets: usize,
    /// Total `(dataset, epoch)` releases currently served.
    pub epochs: usize,
    /// Damaged files quarantined over the store's lifetime (initial
    /// open + every reload).
    pub quarantined: u64,
    /// Reload scans started (watcher + admin).
    pub reload_attempts: u64,
    /// Reload scans that failed with a typed error.
    pub reload_failures: u64,
    /// Epochs registered live by reloads.
    pub epochs_loaded_live: u64,
    /// Releases retired live by reloads.
    pub epochs_retired: u64,
    /// `"never"`, `"ok: <scan summary>"` or `"failed: <error>"`.
    pub last_reload: String,
    /// Server uptime (ms) when the last reload finished; `0` if never.
    pub last_reload_uptime_ms: u64,
    /// Whether the watcher thread is currently alive.
    pub watcher_alive: bool,
    /// Watcher threads respawned after a panic.
    pub watcher_restarts: u64,
}

impl StoreSnapshot {
    /// The section for a server with no directory-backed store.
    pub fn empty() -> Self {
        Self {
            datasets: 0,
            epochs: 0,
            quarantined: 0,
            reload_attempts: 0,
            reload_failures: 0,
            epochs_loaded_live: 0,
            epochs_retired: 0,
            last_reload: "never".to_string(),
            last_reload_uptime_ms: 0,
            watcher_alive: false,
            watcher_restarts: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_serve::FileOutcome;

    #[test]
    fn watcher_backoff_doubles_and_caps() {
        let base = Duration::from_millis(100);
        assert_eq!(watcher_backoff(base, 0), base);
        assert_eq!(watcher_backoff(base, 1), base * 2);
        assert_eq!(watcher_backoff(base, 3), base * 8);
        assert_eq!(watcher_backoff(base, 5), base * 32);
        // The cap holds however long the directory stays broken.
        assert_eq!(watcher_backoff(base, 6), base * 32);
        assert_eq!(watcher_backoff(base, u32::MAX), base * 32);
    }

    #[test]
    fn reload_state_tracks_outcomes_and_counters() {
        let state = ReloadState::new(3);
        let snap = state.snapshot(1, 2);
        assert_eq!(snap.quarantined, 3, "seeded from the initial open");
        assert_eq!(snap.last_reload, "never");
        assert_eq!(snap.last_reload_uptime_ms, 0);

        state.attempts.fetch_add(1, Ordering::Relaxed);
        let report = OpenReport {
            outcomes: vec![
                FileOutcome::Loaded {
                    dataset: "d".into(),
                    epoch: 9,
                    path: "d-e9.json".into(),
                },
                FileOutcome::Quarantined {
                    path: "torn.json".into(),
                    moved_to: "quarantine/torn.json".into(),
                    reason: "truncated".into(),
                },
                FileOutcome::Retired {
                    dataset: "d".into(),
                    epoch: 1,
                    path: "d-e1.json".into(),
                },
            ],
        };
        state.record_ok(&report, 1234);
        let snap = state.snapshot(1, 2);
        assert_eq!(snap.reload_attempts, 1);
        assert_eq!(snap.reload_failures, 0);
        assert_eq!(snap.epochs_loaded_live, 1);
        assert_eq!(snap.epochs_retired, 1);
        assert_eq!(snap.quarantined, 4);
        assert_eq!(snap.last_reload_uptime_ms, 1234);
        assert!(snap.last_reload.starts_with("ok: 1 loaded"), "{}", snap.last_reload);

        state.attempts.fetch_add(1, Ordering::Relaxed);
        state.record_err("directory vanished", 2345);
        let snap = state.snapshot(1, 2);
        assert_eq!(snap.reload_failures, 1);
        assert_eq!(snap.last_reload, "failed: directory vanished");
        assert_eq!(snap.last_reload_uptime_ms, 2345);
    }

    #[test]
    fn store_snapshot_round_trips_through_json() {
        let snap = ReloadState::new(7).snapshot(2, 5);
        let text = serde_json::to_string(&snap).unwrap();
        let back: StoreSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(snap, back);
        assert_eq!(StoreSnapshot::empty().last_reload, "never");
    }
}
