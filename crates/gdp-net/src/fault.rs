//! Deterministic fault injection for the serving path.
//!
//! Every degradation mode the server defends against is hard to hit by
//! luck and easy to hit on purpose: a [`FaultPlan`] threaded into the
//! request path triggers the configured [`FaultAction`] whenever an
//! answer request names a matching dataset. Tests use it to pin
//! deadline expiry ([`FaultAction::Delay`]), queue overflow under a
//! wedged worker ([`FaultAction::Hold`]), supervisor respawn
//! ([`FaultAction::Panic`]) and artifact-load failures
//! ([`FaultAction::Fail`]) — torn reads and stalled writers are driven
//! from the client side instead (partial writes against the socket
//! timeouts). Production servers run with [`FaultPlan::none`], which
//! costs one mutex lock and a hash probe per answer request.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// A manually released barrier: requests wait in
/// [`Gate::wait_until_open`] until the test calls [`Gate::open`].
#[derive(Debug, Default)]
pub struct Gate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    /// A closed gate.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Opens the gate, releasing every waiter (idempotent).
    pub fn open(&self) {
        *self.open.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }

    /// Blocks until the gate opens, or until `cap` elapses — the cap
    /// keeps a forgotten gate from wedging a worker forever.
    pub fn wait_until_open(&self, cap: Duration) {
        let mut open = self.open.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = std::time::Instant::now() + cap;
        while !*open {
            let now = std::time::Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(open, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            open = guard;
        }
    }
}

/// What to do to a matching request.
#[derive(Debug, Clone)]
pub enum FaultAction {
    /// Sleep this long before answering (deadline-expiry tests).
    Delay(Duration),
    /// Block until the gate opens (deterministic queue-overflow and
    /// drain tests; the wait is capped at 30 s as a safety net).
    Hold(Arc<Gate>),
    /// Panic inside the worker (supervisor-respawn tests).
    Panic,
    /// Fail the request with this message, surfaced as a 500 — the
    /// stand-in for an artifact that cannot be loaded or indexed.
    Fail(String),
}

/// A dataset-keyed table of fault actions, shared with the server.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<HashMap<String, FaultAction>>>,
}

impl FaultPlan {
    /// An empty plan (production default): no request is touched.
    pub fn none() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, FaultAction>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `action` for every answer request naming `dataset`.
    pub fn set(&self, dataset: impl Into<String>, action: FaultAction) {
        self.lock().insert(dataset.into(), action);
    }

    /// Disarms the action for `dataset`.
    pub fn clear(&self, dataset: &str) {
        self.lock().remove(dataset);
    }

    /// Applies the armed action for `dataset`, if any. Delays and holds
    /// block; a panic action panics (the worker's supervisor owns it
    /// from there).
    ///
    /// # Errors
    ///
    /// The [`FaultAction::Fail`] message.
    pub fn apply(&self, dataset: &str) -> Result<(), String> {
        // Clone the action out so the table lock is not held while a
        // request sleeps, waits or panics.
        let action = self.lock().get(dataset).cloned();
        match action {
            None => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::Hold(gate)) => {
                gate.wait_until_open(Duration::from_secs(30));
                Ok(())
            }
            Some(FaultAction::Panic) => panic!("fault-injected worker panic ({dataset})"),
            Some(FaultAction::Fail(msg)) => Err(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        assert!(FaultPlan::none().apply("any").is_ok());
    }

    #[test]
    fn delay_fail_and_clear() {
        let plan = FaultPlan::none();
        plan.set("slow", FaultAction::Delay(Duration::from_millis(5)));
        plan.set("broken", FaultAction::Fail("disk gone".to_string()));
        let t0 = std::time::Instant::now();
        assert!(plan.apply("slow").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(plan.apply("broken").unwrap_err(), "disk gone");
        assert!(plan.apply("other").is_ok());
        plan.clear("broken");
        assert!(plan.apply("broken").is_ok());
    }

    #[test]
    fn panic_action_panics_in_the_caller() {
        let plan = FaultPlan::none();
        plan.set("boom", FaultAction::Panic);
        let result = std::panic::catch_unwind(|| plan.apply("boom"));
        assert!(result.is_err());
        // The poisoned-by-panic table still works for other callers.
        assert!(plan.apply("fine").is_ok());
    }

    #[test]
    fn gate_releases_waiters() {
        let gate = Gate::new();
        let plan = FaultPlan::none();
        plan.set("held", FaultAction::Hold(Arc::clone(&gate)));
        let waiter = {
            let plan = plan.clone();
            std::thread::spawn(move || {
                let t0 = std::time::Instant::now();
                plan.apply("held").unwrap();
                t0.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        gate.open();
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(25), "waited {waited:?}");
        // An already-open gate does not block.
        plan.apply("held").unwrap();
    }
}
