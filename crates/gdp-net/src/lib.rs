//! Std-only HTTP/1.1 serving frontend over the answering service.
//!
//! The consumer path ends at a network boundary: untrusted readers ask
//! for released statistics over HTTP, and the disclosure pipeline's
//! guarantees only matter in production if that boundary stays up under
//! real traffic. Answering is budget-free post-processing, so the
//! frontend's job is purely an availability problem; this crate is the
//! robustness machinery, vendored on `std` alone (a thread-per-request
//! accept loop over [`std::net::TcpListener`], mirroring how `rayon`
//! was vendored — no async runtime):
//!
//! * **Bounded request queue with explicit backpressure.** Accepted
//!   connections enter a fixed-capacity queue; overflow is refused on
//!   the spot with `503` + `Retry-After`, never buffered without limit
//!   ([`queue`]).
//! * **Per-request deadlines and socket timeouts.** Queue wait counts
//!   against the deadline (`504` on expiry); socket read/write
//!   timeouts make the workers slow-loris and stalled-writer safe
//!   ([`server`]).
//! * **A supervised worker pool.** A worker panic is counted, the
//!   connection dies, and the supervisor respawns the worker — the
//!   service keeps answering ([`server`]).
//! * **Graceful shutdown.** `POST /shutdown` (or a Unix signal via
//!   [`signal::install`]) stops the acceptor, drains queued and
//!   in-flight requests within a deadline, and reports whether the
//!   drain was clean ([`server::DrainReport`]).
//! * **Live store reload.** A supervised watcher thread (and
//!   `POST /v1/admin/reload`) re-scans the artifact directory the
//!   store was opened from: freshly published epochs go live, damage
//!   is quarantined, GC-reclaimed releases are retired. Reload
//!   failures degrade to typed errors and counters — the releases
//!   already being served are never disturbed ([`reload`]).
//! * **Observability.** `GET /health` and `GET /stats` expose uptime,
//!   in-flight and queue gauges, per-variant counts, memo-cache hit
//!   rate, panic/restart counters and the store-lifecycle section
//!   (epochs held, quarantined files, last-reload outcome) ([`stats`]).
//! * **Deterministic fault injection.** A [`FaultPlan`] threaded into
//!   the request path forces delays, holds, worker panics and
//!   artifact-load failures, so every degradation mode above is pinned
//!   by tests instead of exercised by luck ([`fault`]).
//!
//! Responses are bit-identical to direct
//! [`AnswerService::answer_typed`](gdp_serve::AnswerService::answer_typed)
//! calls: the JSON layer prints every finite `f64` with shortest
//! round-trip precision, and the conformance tests pin the equivalence
//! through a real socket.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod fault;
pub mod http;
pub mod queue;
pub mod reload;
pub mod server;
pub mod signal;
pub mod stats;

pub use api::{
    error_body, error_status, AnswerRequest, AnswerResponse, BatchAnswerRequest,
    BatchAnswerResponse, ErrorBody, ReleaseInfo, ReleasesResponse, ReloadResponse, WireAnswer,
};
pub use fault::{FaultAction, FaultPlan, Gate};
pub use http::{HttpError, Request, Response};
pub use reload::{ReloadConfig, StoreSnapshot};
pub use server::{DrainReport, Server, ServerConfig, ServerHandle};
pub use stats::{ledger_section, CacheSnapshot, LedgerInfo, StatsSnapshot, VariantCounts};
