//! The serving frontend: acceptor, bounded queue, supervised worker
//! pool, deadlines, and graceful shutdown.
//!
//! The shape is a fixed set of OS threads (vendored-`rayon` style — no
//! async runtime), each with one job:
//!
//! * the **acceptor** owns the listener; every accepted connection is
//!   pushed into the bounded queue or refused with `503` +
//!   `Retry-After` on overflow — never buffered without limit;
//! * **workers** pop connections and serve requests with socket
//!   read/write timeouts (slow-loris and stalled-writer safe) and a
//!   per-request deadline that counts queue wait (`504` on expiry);
//! * the **supervisor** watches for worker panics (reported by a drop
//!   guard), counts them, and respawns the pool — one poisoned request
//!   costs its connection, never the service.
//!
//! Shutdown (via [`ServerHandle::shutdown`], `POST /shutdown`, or a
//! signal loop in the CLI) closes the queue, stops the acceptor, lets
//! workers drain every queued and in-flight request within a drain
//! deadline, and reports whether the drain was clean.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use gdp_core::Privilege;
use gdp_serve::AnswerService;

use crate::api::{
    error_body, AnswerRequest, AnswerResponse, BatchAnswerRequest, BatchAnswerResponse,
    ErrorBody, ReleaseInfo, ReleasesResponse, ReloadResponse, WireAnswer,
};
use crate::fault::FaultPlan;
use crate::http::{self, HttpError, Request, Response};
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::reload::{self, ReloadConfig, ReloadState};
use crate::stats::{ServerStats, StatsSnapshot};

/// Everything tunable about the server. `Default` is production-shaped;
/// tests shrink the knobs to make degradation modes fast to hit.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads serving requests.
    pub workers: usize,
    /// Bounded connection-queue capacity; overflow is an immediate
    /// `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from `accept()` for a
    /// connection's first request (queue wait counts) and from request
    /// arrival for keep-alive successors; expiry is a `504`.
    pub request_deadline: Duration,
    /// Socket read/write timeout — the slow-loris / stalled-writer
    /// bound. A connection that stalls longer is dropped and counted.
    pub io_timeout: Duration,
    /// How long [`ServerHandle::join`] waits for workers to finish
    /// queued and in-flight work before abandoning them.
    pub drain_deadline: Duration,
    /// The `Retry-After` hint (seconds) sent with every overflow `503`.
    pub retry_after_secs: u64,
    /// Hard cap on a request body, in bytes.
    pub max_body_bytes: usize,
    /// Keep-alive cap: requests served per connection before the server
    /// closes it (bounds how long one client can pin a worker).
    pub max_requests_per_connection: u32,
    /// Live-reload wiring for a directory-backed store (watcher thread
    /// and `POST /v1/admin/reload`). Default: disabled.
    pub reload: ReloadConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 128,
            request_deadline: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(10),
            retry_after_secs: 1,
            max_body_bytes: 1 << 20,
            max_requests_per_connection: 10_000,
            reload: ReloadConfig::default(),
        }
    }
}

/// What [`ServerHandle::join`] reports after the drain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainReport {
    /// `true` when every queued connection was served and every worker
    /// exited within the drain deadline.
    pub clean: bool,
    /// Workers still busy when the drain deadline expired (abandoned,
    /// not killed).
    pub abandoned_workers: u64,
    /// Connections still queued when the drain deadline expired.
    pub abandoned_queue: usize,
    /// The final counter snapshot.
    pub stats: StatsSnapshot,
}

enum SupMsg {
    WorkerDied,
    WatcherDied,
    Shutdown,
}

struct Conn {
    stream: TcpStream,
    accepted_at: Instant,
}

struct Shared {
    service: Arc<AnswerService>,
    config: ServerConfig,
    faults: FaultPlan,
    queue: BoundedQueue<Conn>,
    stats: ServerStats,
    reload: ReloadState,
    draining: AtomicBool,
    addr: SocketAddr,
    sup_tx: Mutex<Sender<SupMsg>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the server into draining state (idempotent): the queue
    /// refuses new connections, workers exit once it is empty, and the
    /// acceptor breaks on its next wakeup.
    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Unblocks the acceptor's `accept()` with a throwaway loopback
    /// connection so it notices the draining flag immediately.
    fn wake_acceptor(&self) {
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    fn sup_sender(&self) -> Sender<SupMsg> {
        self.sup_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn snapshot(&self) -> StatsSnapshot {
        let store = self.service.store();
        let store_section = self.reload.snapshot(store.datasets().len(), store.len());
        self.stats.snapshot(
            self.draining(),
            self.queue.len(),
            self.queue.capacity(),
            self.service.cache_stats(),
            store_section,
            crate::stats::ledger_section(store),
        )
    }

    /// One reload scan against `dir`, fully accounted: the attempt,
    /// its outcome and its uptime stamp all land in [`ReloadState`]
    /// whether it succeeds or degrades to a typed error.
    fn reload_store(&self, dir: &Path) -> Result<gdp_serve::OpenReport, gdp_serve::ServeError> {
        self.reload.attempts.fetch_add(1, Ordering::Relaxed);
        let uptime = self.stats.uptime_ms();
        match self.service.store().merge_dir(dir) {
            Ok(report) => {
                self.reload.record_ok(&report, uptime);
                Ok(report)
            }
            Err(err) => {
                self.reload.record_err(&err.to_string(), uptime);
                Err(err)
            }
        }
    }
}

/// The frontend's entry point: [`Server::start`] binds, spawns the
/// threads, and hands back a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns acceptor + workers + supervisor, and
    /// returns immediately. `faults` is consulted on every answer
    /// request; pass [`FaultPlan::none`] in production.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the address cannot be bound.
    pub fn start(
        service: Arc<AnswerService>,
        config: ServerConfig,
        faults: FaultPlan,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (sup_tx, sup_rx) = std::sync::mpsc::channel();
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            stats: ServerStats::new(),
            reload: ReloadState::new(config.reload.initial_quarantined),
            draining: AtomicBool::new(false),
            addr,
            sup_tx: Mutex::new(sup_tx.clone()),
            service,
            config,
            faults,
        });
        for _ in 0..shared.config.workers.max(1) {
            spawn_worker(Arc::clone(&shared), shared.sup_sender());
        }
        spawn_watcher(Arc::clone(&shared), shared.sup_sender());
        let supervisor = spawn_supervisor(Arc::clone(&shared), sup_rx);
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gdp-net-acceptor".to_string())
                .spawn(move || accept_loop(listener, &shared))
                .expect("spawn acceptor thread")
        };
        Ok(ServerHandle {
            addr,
            shared,
            sup_tx,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::join`] for a graceful stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    sup_tx: Sender<SupMsg>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has begun (locally or via `POST /shutdown`).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// The current counter snapshot (same data as `GET /stats`).
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Begins a graceful shutdown without blocking: stop accepting,
    /// refuse new connections, let workers drain. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
        self.shared.wake_acceptor();
    }

    /// Shuts down (if not already draining) and blocks until the drain
    /// finishes or the configured drain deadline expires.
    pub fn join(mut self) -> DrainReport {
        self.shutdown();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        // The watcher is part of the supervised pool: a clean drain
        // reaps it along with the workers (it notices the draining flag
        // within one sleep slice).
        while (self.shared.stats.live_workers.load(Ordering::SeqCst) > 0
            || self.shared.reload.watcher_alive.load(Ordering::SeqCst) > 0)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        let abandoned_workers = self.shared.stats.live_workers.load(Ordering::SeqCst);
        let _ = self.sup_tx.send(SupMsg::Shutdown);
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let abandoned_queue = self.shared.queue.len();
        DrainReport {
            clean: abandoned_workers == 0 && abandoned_queue == 0,
            abandoned_workers,
            abandoned_queue,
            stats: self.shared.snapshot(),
        }
    }
}

// ---- acceptor ----

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.draining() {
                    // The wakeup connection (or a straggler): refuse and
                    // stop accepting. Pending backlog entries are reset
                    // when the listener drops below.
                    drop(stream);
                    break;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let conn = match configure(stream, shared) {
                    Some(conn) => conn,
                    None => continue,
                };
                match shared.queue.try_push(conn) {
                    Ok(()) => {}
                    Err(PushError::Full(conn)) => {
                        shared.stats.rejected_overflow.fetch_add(1, Ordering::Relaxed);
                        refuse(conn, shared, "overloaded", "request queue is full");
                    }
                    Err(PushError::Closed(conn)) => {
                        drop(conn);
                        break;
                    }
                }
            }
            Err(_) => {
                if shared.draining() {
                    break;
                }
            }
        }
    }
}

fn configure(stream: TcpStream, shared: &Shared) -> Option<Conn> {
    let timeout = Some(shared.config.io_timeout);
    stream.set_read_timeout(timeout).ok()?;
    stream.set_write_timeout(timeout).ok()?;
    let _ = stream.set_nodelay(true);
    Some(Conn {
        stream,
        accepted_at: Instant::now(),
    })
}

/// Writes an immediate `503` + `Retry-After` and closes — the explicit
/// backpressure signal. Best effort: the write is bounded by the socket
/// write timeout and a failure just drops the connection.
fn refuse(conn: Conn, shared: &Shared, kind: &str, message: &str) {
    let response = Response::json(
        503,
        &ErrorBody {
            kind: kind.to_string(),
            error: message.to_string(),
        },
    )
    .with_header("retry-after", shared.config.retry_after_secs.to_string());
    let mut writer = BufWriter::new(conn.stream);
    let _ = http::write_response(&mut writer, &response, false);
}

// ---- supervision ----

fn spawn_worker(shared: Arc<Shared>, tx: Sender<SupMsg>) {
    // Counted before the spawn so a racing `join()` never undercounts
    // live workers.
    shared.stats.live_workers.fetch_add(1, Ordering::SeqCst);
    let worker_shared = Arc::clone(&shared);
    let spawned = std::thread::Builder::new()
        .name("gdp-net-worker".to_string())
        .spawn(move || {
            let guard = WorkerGuard {
                shared: worker_shared,
                tx,
            };
            worker_loop(&guard.shared);
        });
    if spawned.is_err() {
        // Spawn failure (fd/thread exhaustion): undo the count; the
        // pool runs one short until the next panic-triggered respawn.
        shared.stats.live_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decrements the live-worker gauge on every exit and reports panics to
/// the supervisor — the drop runs during unwind, which is exactly when
/// a panicked worker must be replaced.
struct WorkerGuard {
    shared: Arc<Shared>,
    tx: Sender<SupMsg>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.shared.stats.live_workers.fetch_sub(1, Ordering::SeqCst);
        if std::thread::panicking() {
            self.shared.stats.worker_panics.fetch_add(1, Ordering::SeqCst);
            let _ = self.tx.send(SupMsg::WorkerDied);
        }
    }
}

fn spawn_supervisor(shared: Arc<Shared>, rx: Receiver<SupMsg>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("gdp-net-supervisor".to_string())
        .spawn(move || loop {
            match rx.recv() {
                Ok(SupMsg::WorkerDied) => {
                    if !shared.draining() {
                        shared.stats.worker_restarts.fetch_add(1, Ordering::SeqCst);
                        spawn_worker(Arc::clone(&shared), shared.sup_sender());
                    }
                }
                Ok(SupMsg::WatcherDied) => {
                    if !shared.draining() {
                        shared
                            .reload
                            .watcher_restarts
                            .fetch_add(1, Ordering::SeqCst);
                        spawn_watcher(Arc::clone(&shared), shared.sup_sender());
                    }
                }
                Ok(SupMsg::Shutdown) | Err(_) => break,
            }
        })
        .expect("spawn supervisor thread")
}

// ---- store watcher ----

/// Spawns the store-watcher thread when the config asks for one (a
/// reload directory *and* an interval); a no-op otherwise. Supervised
/// exactly like workers: a panic is reported by the drop guard and the
/// supervisor respawns the watcher.
fn spawn_watcher(shared: Arc<Shared>, tx: Sender<SupMsg>) {
    let (Some(dir), Some(interval)) = (
        shared.config.reload.dir.clone(),
        shared.config.reload.interval,
    ) else {
        return;
    };
    // Marked alive before the spawn so a racing `/stats` never reads a
    // configured-but-absent watcher.
    shared.reload.watcher_alive.store(1, Ordering::SeqCst);
    let watcher_shared = Arc::clone(&shared);
    let spawned = std::thread::Builder::new()
        .name("gdp-net-watcher".to_string())
        .spawn(move || {
            let guard = WatcherGuard {
                shared: watcher_shared,
                tx,
            };
            watcher_loop(&guard.shared, &dir, interval);
        });
    if spawned.is_err() {
        shared.reload.watcher_alive.store(0, Ordering::SeqCst);
    }
}

/// Clears the alive gauge on every exit and reports panics to the
/// supervisor for a respawn — the watcher gets the same crash-safety
/// contract as the worker pool.
struct WatcherGuard {
    shared: Arc<Shared>,
    tx: Sender<SupMsg>,
}

impl Drop for WatcherGuard {
    fn drop(&mut self) {
        self.shared.reload.watcher_alive.store(0, Ordering::SeqCst);
        if std::thread::panicking() {
            let _ = self.tx.send(SupMsg::WatcherDied);
        }
    }
}

/// Polls the artifact directory forever: sleep (draining-aware, in
/// small slices), re-scan, repeat. Reload failures are typed and
/// *expected* (a publisher may be mid-write, an operator mid-edit) —
/// they only stretch the next sleep via [`reload::watcher_backoff`],
/// never take the thread down.
fn watcher_loop(shared: &Shared, dir: &Path, interval: Duration) {
    let mut consecutive_failures: u32 = 0;
    loop {
        let nap = reload::watcher_backoff(interval, consecutive_failures);
        let wake = Instant::now() + nap;
        while Instant::now() < wake {
            if shared.draining() {
                return;
            }
            std::thread::sleep(Duration::from_millis(20).min(nap));
        }
        if shared.draining() {
            return;
        }
        match shared.reload_store(dir) {
            Ok(_) => consecutive_failures = 0,
            Err(_) => consecutive_failures = consecutive_failures.saturating_add(1),
        }
    }
}

// ---- workers ----

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop(Duration::from_millis(50)) {
            Pop::Item(conn) => handle_connection(shared, conn),
            Pop::Empty => {}
            Pop::Closed => break,
        }
    }
}

/// Increments the in-flight gauge for the scope of one request,
/// decrementing on drop — including the unwind of a fault-injected
/// panic, so the gauge never leaks.
struct InFlight<'a>(&'a ServerStats);

impl<'a> InFlight<'a> {
    fn new(stats: &'a ServerStats) -> Self {
        stats.in_flight.fetch_add(1, Ordering::SeqCst);
        Self(stats)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Shared, conn: Conn) {
    let Ok(read_half) = conn.stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn.stream);
    // The first request's deadline starts at accept time: queue wait is
    // part of the latency a caller observes, so backpressure shows up
    // as 504s instead of silently slow answers. Keep-alive successors
    // restart the clock at their own arrival.
    let mut deadline_start = conn.accepted_at;
    for _ in 0..shared.config.max_requests_per_connection {
        let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(Some(request)) => request,
            // Clean keep-alive close, or a peer that tore the
            // connection mid-request: nothing left to serve.
            Ok(None) | Err(HttpError::Closed) => return,
            Err(HttpError::TimedOut) => {
                // Slow-loris: the peer fed bytes slower than the read
                // timeout. Count it and reclaim the worker.
                shared.stats.io_timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(HttpError::TooLarge { what, limit }) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::json(
                    413,
                    &ErrorBody {
                        kind: "too_large".to_string(),
                        error: format!("{what} exceeds the limit of {limit}"),
                    },
                );
                let _ = http::write_response(&mut writer, &response, false);
                return;
            }
            Err(HttpError::Malformed(message)) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                let response = Response::json(
                    400,
                    &ErrorBody {
                        kind: "bad_request".to_string(),
                        error: message,
                    },
                );
                let _ = http::write_response(&mut writer, &response, false);
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let in_flight = InFlight::new(&shared.stats);
        let response = route(shared, &request, deadline_start);
        let keep_alive = request.keep_alive()
            && !shared.draining()
            && shared.config.max_requests_per_connection > 1;
        match http::write_response(&mut writer, &response, keep_alive) {
            Ok(()) => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(HttpError::TimedOut) => {
                // Stalled writer: the peer stopped reading its response.
                shared.stats.io_timeouts.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return,
        }
        drop(in_flight);
        if !keep_alive {
            return;
        }
        deadline_start = Instant::now();
    }
}

// ---- routing ----

fn route(shared: &Shared, request: &Request, deadline_start: Instant) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let status = if shared.draining() { "draining" } else { "ok" };
            Response::json(200, &serde::Value::Map(vec![(
                "status".to_string(),
                serde::Value::Str(status.to_string()),
            )]))
        }
        ("GET", "/stats") => Response::json(200, &shared.snapshot()),
        ("GET", "/v1/releases") => releases(shared),
        ("POST", "/shutdown") => {
            shared.begin_drain();
            shared.wake_acceptor();
            Response::json(200, &serde::Value::Map(vec![(
                "status".to_string(),
                serde::Value::Str("draining".to_string()),
            )]))
        }
        ("POST", "/v1/admin/reload") => admin_reload(shared),
        ("POST", "/v1/answer") => answer_one(shared, request, deadline_start),
        ("POST", "/v1/answer_batch") => answer_batch(shared, request, deadline_start),
        _ => Response::json(
            404,
            &ErrorBody {
                kind: "not_found".to_string(),
                error: format!("no route for {} {}", request.method, request.path),
            },
        ),
    }
}

/// `POST /v1/admin/reload`: one on-demand store re-scan. `400` when the
/// server has no artifact directory to reload from, `200` with the
/// per-file report on success, `500` with the typed error rendered when
/// the scan degrades — the store keeps serving what it already holds in
/// every case.
fn admin_reload(shared: &Shared) -> Response {
    let Some(dir) = shared.config.reload.dir.clone() else {
        return Response::json(
            400,
            &ErrorBody {
                kind: "reload_unavailable".to_string(),
                error: "the server was not started from an artifact directory; \
                        there is nothing to reload"
                    .to_string(),
            },
        );
    };
    match shared.reload_store(&dir) {
        Ok(report) => Response::json(
            200,
            &ReloadResponse {
                summary: report.summary(),
                report,
            },
        ),
        Err(err) => Response::json(
            500,
            &ErrorBody {
                kind: "reload_failed".to_string(),
                error: err.to_string(),
            },
        ),
    }
}

fn parse_body<T: serde::Deserialize>(request: &Request) -> Result<T, Response> {
    let text = std::str::from_utf8(&request.body).map_err(|_| bad_json("body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| bad_json(&e.to_string()))
}

fn bad_json(message: &str) -> Response {
    Response::json(
        400,
        &ErrorBody {
            kind: "bad_json".to_string(),
            error: message.to_string(),
        },
    )
}

/// Applies the fault plan and the request deadline — in that order, so
/// an injected delay deterministically expires the deadline.
fn preflight(shared: &Shared, dataset: &str, deadline_start: Instant) -> Result<(), Response> {
    if let Err(message) = shared.faults.apply(dataset) {
        return Err(Response::json(
            500,
            &ErrorBody {
                kind: "fault_injected".to_string(),
                error: message,
            },
        ));
    }
    if deadline_start.elapsed() > shared.config.request_deadline {
        shared.stats.deadline_expired.fetch_add(1, Ordering::Relaxed);
        return Err(Response::json(
            504,
            &ErrorBody {
                kind: "deadline_exceeded".to_string(),
                error: format!(
                    "request exceeded its {}ms deadline (queue wait included)",
                    shared.config.request_deadline.as_millis()
                ),
            },
        ));
    }
    Ok(())
}

fn answer_one(shared: &Shared, request: &Request, deadline_start: Instant) -> Response {
    let body: AnswerRequest = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    if let Err(response) = preflight(shared, &body.dataset, deadline_start) {
        return response;
    }
    match shared.service.answer_typed(
        &body.dataset,
        body.epoch,
        Privilege::new(body.privilege),
        body.level,
        &body.query,
    ) {
        Ok(answer) => {
            shared.stats.count_variant(body.query.name());
            Response::json(
                200,
                &AnswerResponse {
                    answer: WireAnswer::from(&answer),
                },
            )
        }
        Err(err) => error_body(&err),
    }
}

fn answer_batch(shared: &Shared, request: &Request, deadline_start: Instant) -> Response {
    let body: BatchAnswerRequest = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    if let Err(response) = preflight(shared, &body.dataset, deadline_start) {
        return response;
    }
    match shared.service.answer_typed_batch(
        &body.dataset,
        body.epoch,
        Privilege::new(body.privilege),
        body.level,
        &body.queries,
    ) {
        Ok(answers) => {
            for query in &body.queries {
                shared.stats.count_variant(query.name());
            }
            Response::json(
                200,
                &BatchAnswerResponse {
                    answers: answers.iter().map(WireAnswer::from).collect(),
                },
            )
        }
        Err(err) => error_body(&err),
    }
}

fn releases(shared: &Shared) -> Response {
    let store = shared.service.store();
    let mut releases = Vec::new();
    for dataset in store.datasets() {
        for epoch in store.epochs(&dataset) {
            let Ok(indexed) = store.get(&dataset, epoch) else {
                continue;
            };
            let levels = indexed.artifact().hierarchy().levels();
            let (left_nodes, right_nodes) = levels
                .first()
                .map(|l| (l.left().node_count(), l.right().node_count()))
                .unwrap_or((0, 0));
            releases.push(ReleaseInfo {
                dataset: dataset.clone(),
                epoch,
                levels: levels.len(),
                left_nodes,
                right_nodes,
                left_groups: levels.iter().map(|l| l.left().block_count()).collect(),
                right_groups: levels.iter().map(|l| l.right().block_count()).collect(),
            });
        }
    }
    Response::json(200, &ReleasesResponse { releases })
}
