//! A minimal blocking HTTP client — enough for the load generator, the
//! CLI's smoke checks, and the conformance/fault tests to drive a real
//! server through a real socket.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{self, ClientResponse, HttpError, HttpResult};

/// One keep-alive client connection.
pub struct ClientConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ClientConn {
    /// Connects with `timeout` applied to connect, reads and writes.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the server refuses or times out.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the response. `body`, when present,
    /// is sent as `application/json`.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on transport or framing failures, including
    /// [`HttpError::Closed`] when the server hung up (e.g. after a
    /// `connection: close` response or mid-drain).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> HttpResult<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: gdp\r\ncontent-length: {}\r\n{}\r\n",
            body.len(),
            if body.is_empty() {
                ""
            } else {
                "content-type: application/json\r\n"
            }
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        match http::read_response(&mut self.reader)? {
            Some(response) => Ok(response),
            None => Err(HttpError::Closed),
        }
    }
}

/// One-shot request on a fresh connection (closed afterwards).
///
/// # Errors
///
/// [`HttpError`]; connect failures surface as [`HttpError::Io`] (or
/// [`HttpError::TimedOut`] on connect timeout).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> HttpResult<ClientResponse> {
    let mut conn = ClientConn::connect(addr, timeout).map_err(HttpError::from)?;
    conn.send(method, path, body)
}

/// `GET path` on a fresh connection.
///
/// # Errors
///
/// Same as [`request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> HttpResult<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body on a fresh connection.
///
/// # Errors
///
/// Same as [`request`].
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    json: &str,
    timeout: Duration,
) -> HttpResult<ClientResponse> {
    request(addr, "POST", path, Some(json.as_bytes()), timeout)
}

/// Retries `send` with bounded exponential backoff while it returns a
/// `503` (the server's explicit backpressure signal). Returns the first
/// non-503 response, or the last 503 once `max_tries` is exhausted;
/// the second element counts the retries performed.
///
/// # Errors
///
/// Propagates the underlying [`HttpError`] unchanged.
pub fn with_backoff<F>(
    mut send: F,
    max_tries: u32,
    base_backoff: Duration,
) -> HttpResult<(ClientResponse, u32)>
where
    F: FnMut() -> HttpResult<ClientResponse>,
{
    let mut retries = 0;
    let mut backoff = base_backoff;
    loop {
        let response = send()?;
        if response.status != 503 || retries + 1 >= max_tries.max(1) {
            return Ok((response, retries));
        }
        // Honor the server's Retry-After hint when it is shorter than
        // the current backoff (the hint is in whole seconds, so the
        // exponential schedule usually undercuts it).
        let hint = response
            .header("retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs);
        std::thread::sleep(hint.map_or(backoff, |h| h.min(backoff)));
        retries += 1;
        backoff = backoff.saturating_mul(2);
    }
}
