//! A minimal blocking HTTP client — enough for the load generator, the
//! CLI's smoke checks, and the conformance/fault tests to drive a real
//! server through a real socket.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{self, ClientResponse, HttpError, HttpResult};

/// One keep-alive client connection.
pub struct ClientConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ClientConn {
    /// Connects with `timeout` applied to connect, reads and writes.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the server refuses or times out.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the response. `body`, when present,
    /// is sent as `application/json`.
    ///
    /// # Errors
    ///
    /// [`HttpError`] on transport or framing failures, including
    /// [`HttpError::Closed`] when the server hung up (e.g. after a
    /// `connection: close` response or mid-drain).
    pub fn send(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> HttpResult<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: gdp\r\ncontent-length: {}\r\n{}\r\n",
            body.len(),
            if body.is_empty() {
                ""
            } else {
                "content-type: application/json\r\n"
            }
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        match http::read_response(&mut self.reader)? {
            Some(response) => Ok(response),
            None => Err(HttpError::Closed),
        }
    }
}

/// One-shot request on a fresh connection (closed afterwards).
///
/// # Errors
///
/// [`HttpError`]; connect failures surface as [`HttpError::Io`] (or
/// [`HttpError::TimedOut`] on connect timeout).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> HttpResult<ClientResponse> {
    let mut conn = ClientConn::connect(addr, timeout).map_err(HttpError::from)?;
    conn.send(method, path, body)
}

/// `GET path` on a fresh connection.
///
/// # Errors
///
/// Same as [`request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> HttpResult<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body on a fresh connection.
///
/// # Errors
///
/// Same as [`request`].
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    json: &str,
    timeout: Duration,
) -> HttpResult<ClientResponse> {
    request(addr, "POST", path, Some(json.as_bytes()), timeout)
}

/// The deterministic jittered backoff for retry number `retry` (0 =
/// first retry): somewhere in `[window/2, window]` where `window =
/// base << retry` (exponent capped at 10 so the window stays bounded).
///
/// The jitter is a pure function of `(seed, retry)` — a splitmix64
/// hash, no RNG state — so a caller replaying the same seed observes
/// the identical schedule, while callers with distinct seeds
/// desynchronize instead of retrying in lockstep (the thundering-herd
/// failure plain exponential backoff invites).
pub fn backoff_delay(base: Duration, retry: u32, seed: u64) -> Duration {
    let window = base.saturating_mul(1u32 << retry.min(10));
    let half = window / 2;
    let mut z = seed ^ u64::from(retry).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Top 53 bits → a uniform fraction in [0, 1); exact in an f64.
    let fraction = (z >> 11) as f64 / (1u64 << 53) as f64;
    half + window.saturating_sub(half).mul_f64(fraction)
}

/// Retries `send` with bounded exponential backoff while it returns a
/// `503` (the server's explicit backpressure signal). Returns the first
/// non-503 response, or the last 503 once `max_tries` is exhausted;
/// the second element counts the retries performed.
///
/// Sleeps follow [`backoff_delay`] under the caller's `seed`, so the
/// schedule is deterministic per caller and decorrelated across
/// callers; the server's `Retry-After` hint is honored when it is
/// shorter than the computed delay.
///
/// # Errors
///
/// Propagates the underlying [`HttpError`] unchanged.
pub fn with_backoff<F>(
    mut send: F,
    max_tries: u32,
    base_backoff: Duration,
    seed: u64,
) -> HttpResult<(ClientResponse, u32)>
where
    F: FnMut() -> HttpResult<ClientResponse>,
{
    let mut retries = 0;
    loop {
        let response = send()?;
        if response.status != 503 || retries + 1 >= max_tries.max(1) {
            return Ok((response, retries));
        }
        let backoff = backoff_delay(base_backoff, retries, seed);
        // Honor the server's Retry-After hint when it is shorter than
        // the current backoff (the hint is in whole seconds, so the
        // jittered exponential schedule usually undercuts it).
        let hint = response
            .header("retry-after")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs);
        std::thread::sleep(hint.map_or(backoff, |h| h.min(backoff)));
        retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delay_stays_within_the_jitter_window() {
        let base = Duration::from_millis(20);
        for seed in [0u64, 1, 42, u64::MAX] {
            for retry in 0..12u32 {
                let window = base.saturating_mul(1u32 << retry.min(10));
                let delay = backoff_delay(base, retry, seed);
                assert!(
                    delay >= window / 2 && delay <= window,
                    "retry {retry} seed {seed}: {delay:?} outside [{:?}, {window:?}]",
                    window / 2
                );
            }
        }
    }

    #[test]
    fn backoff_delay_is_deterministic_per_seed_and_varies_across_seeds() {
        let base = Duration::from_millis(50);
        assert_eq!(backoff_delay(base, 3, 7), backoff_delay(base, 3, 7));
        // Distinct seeds must not share one schedule (the whole point
        // of the jitter). One collision would be astronomically
        // unlucky across four retries.
        let schedule = |seed| (0..4).map(|r| backoff_delay(base, r, seed)).collect::<Vec<_>>();
        assert_ne!(schedule(1), schedule(2));
        // The exponent cap keeps the window bounded at 1024 × base.
        assert!(backoff_delay(base, u32::MAX, 9) <= base * 1024);
    }
}
