//! Minimal HTTP/1.1 framing over any `Read`/`Write` pair.
//!
//! Exactly the subset the serving frontend needs: `GET`/`POST` request
//! parsing with `Content-Length` bodies, keep-alive negotiation, and
//! response writing. Every input dimension is hard-limited (request
//! line, header count and size, body size) so a hostile peer can spend
//! at most a bounded amount of server memory, and every read maps
//! socket timeouts to a typed error so the caller can count and drop
//! slow-loris connections.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

use serde::Serialize;

/// Hard cap on the request line and on each header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Hard cap on the number of request headers.
pub const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, e.g. `/v1/answer`.
    pub path: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request
    /// (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `503`, …).
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Content-Type`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: serializes `body` through the in-tree
    /// serde/serde_json pair (finite floats round-trip bit-exactly).
    pub fn json<T: Serialize>(status: u16, body: &T) -> Self {
        let body = serde_json::to_string(body).unwrap_or_else(|_| "{}".to_string());
        Self {
            status,
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: body.into_bytes(),
        }
    }

    /// A bare response with no body.
    pub fn empty(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header and returns the response (builder style).
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// A framing failure while reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection mid-request (a torn read); a
    /// close *between* requests is reported as `Ok(None)` instead.
    Closed,
    /// A socket read or write hit its timeout (slow-loris peer,
    /// stalled writer).
    TimedOut,
    /// A size limit was exceeded.
    TooLarge {
        /// Which dimension blew the limit.
        what: &'static str,
        /// The configured limit, in bytes or entries.
        limit: usize,
    },
    /// The bytes on the wire are not an HTTP request this server reads.
    Malformed(String),
    /// Any other transport error.
    Io(io::Error),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "peer closed the connection mid-request"),
            Self::TimedOut => write!(f, "socket operation timed out"),
            Self::TooLarge { what, limit } => write!(f, "{what} exceeds the limit of {limit}"),
            Self::Malformed(msg) => write!(f, "malformed request: {msg}"),
            Self::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Self::TimedOut,
            io::ErrorKind::UnexpectedEof => Self::Closed,
            _ => Self::Io(e),
        }
    }
}

/// Result alias for request reading.
pub type HttpResult<T> = std::result::Result<T, HttpError>;

fn read_line<R: BufRead>(reader: &mut R, line: &mut Vec<u8>) -> HttpResult<usize> {
    line.clear();
    let mut read = 0usize;
    loop {
        let n = Read::take(&mut *reader, (MAX_LINE_BYTES + 1 - line.len()) as u64)
            .read_until(b'\n', line)?;
        read += n;
        if n == 0 || line.last() == Some(&b'\n') {
            break;
        }
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::TooLarge {
                what: "header line",
                limit: MAX_LINE_BYTES,
            });
        }
    }
    if line.len() > MAX_LINE_BYTES {
        return Err(HttpError::TooLarge {
            what: "header line",
            limit: MAX_LINE_BYTES,
        });
    }
    while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
        line.pop();
    }
    Ok(read)
}

/// Reads one request. Returns `Ok(None)` when the peer closed the
/// connection cleanly before sending any byte (normal keep-alive end).
///
/// # Errors
///
/// [`HttpError`] for torn reads, timeouts, oversized input and
/// malformed framing.
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> HttpResult<Option<Request>> {
    let mut line = Vec::with_capacity(256);
    if read_line(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let text = String::from_utf8_lossy(&line);
    let mut parts = text.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Malformed(format!("bad request line `{text}`")));
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::Malformed(format!("unsupported version `{other}`"))),
    };
    let request_line = (method.to_string(), path.to_string());

    let mut headers = Vec::new();
    loop {
        if read_line(reader, &mut line)? == 0 {
            return Err(HttpError::Closed);
        }
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooLarge {
                what: "header count",
                limit: MAX_HEADERS,
            });
        }
        let text = String::from_utf8_lossy(&line);
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{text}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "chunked transfer encoding is not supported".to_string(),
        ));
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            what: "request body",
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        read_exact(reader, &mut body)?;
    }
    Ok(Some(Request {
        method: request_line.0,
        path: request_line.1,
        http11,
        headers,
        body,
    }))
}

fn read_exact<R: BufRead>(reader: &mut R, buf: &mut [u8]) -> HttpResult<()> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return Err(HttpError::Closed);
        }
        filled += n;
    }
    Ok(())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes `response` to `writer` and flushes. `keep_alive` decides the
/// advertised `Connection` header; the body always carries an explicit
/// `Content-Length` so the peer never has to read until EOF.
///
/// # Errors
///
/// [`HttpError::TimedOut`] when the peer stalls past the socket write
/// timeout; other transport errors as [`HttpError::Io`].
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> HttpResult<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()?;
    Ok(())
}

/// A response read back by the client side.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs (names lowercased).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header named `name` (ASCII case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Reads one response off `reader` (client side). `Ok(None)` when the
/// server closed before sending a status line.
///
/// # Errors
///
/// Same taxonomy as [`read_request`].
pub fn read_response<R: BufRead>(reader: &mut R) -> HttpResult<Option<ClientResponse>> {
    let mut line = Vec::with_capacity(256);
    if read_line(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let text = String::from_utf8_lossy(&line);
    let mut parts = text.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| HttpError::Malformed(format!("bad status line `{text}`")))?,
        _ => return Err(HttpError::Malformed(format!("bad status line `{text}`"))),
    };
    let mut headers = Vec::new();
    loop {
        if read_line(reader, &mut line)? == 0 {
            return Err(HttpError::Closed);
        }
        if line.is_empty() {
            break;
        }
        let text = String::from_utf8_lossy(&line);
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{text}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        read_exact(reader, &mut body)?;
    }
    Ok(Some(ClientResponse {
        status,
        headers,
        body,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> HttpResult<Option<Request>> {
        read_request(&mut BufReader::new(bytes), 1024)
    }

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let req = parse(
            b"POST /v1/answer HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/answer");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn connection_close_and_http10_default() {
        let req = parse(b"GET /health HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET /health HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse(b"GET /health HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn clean_eof_is_none_torn_request_is_closed() {
        assert!(parse(b"").unwrap().is_none());
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(HttpError::Closed)
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn malformed_and_oversized_inputs_are_typed() {
        assert!(matches!(parse(b"NONSENSE\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse(b"GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nine\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Body over the limit is refused before it is read.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::TooLarge { what: "request body", .. })
        ));
        // A single absurdly long line is refused.
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_LINE_BYTES + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert!(matches!(
            parse(&raw),
            Err(HttpError::TooLarge { what: "header line", .. })
        ));
        // Too many headers are refused.
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert!(matches!(
            parse(&raw),
            Err(HttpError::TooLarge { what: "header count", .. })
        ));
    }

    #[test]
    fn response_round_trips_through_client_reader() {
        let resp = Response::json(200, &serde::Value::Str("ok".to_string()))
            .with_header("retry-after", "1".to_string());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp, true).unwrap();
        let got = read_response(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(got.status, 200);
        assert_eq!(got.header("retry-after"), Some("1"));
        assert_eq!(got.header("connection"), Some("keep-alive"));
        assert_eq!(got.body, b"\"ok\"");
    }
}
