//! A fixed-capacity MPMC queue — the server's only buffer.
//!
//! Backpressure is the point: [`BoundedQueue::try_push`] never blocks
//! and never grows the queue past its capacity, so the acceptor can
//! refuse overflow with an immediate `503` instead of buffering
//! connections without limit. Consumers block on a condvar with a
//! timeout, and closing the queue drains it: pending items are still
//! handed out, then every popper sees [`Pop::Closed`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why a non-blocking push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed (shutdown); the item is handed back.
    Closed(T),
}

/// The outcome of a blocking pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. All methods take `&self`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // Whole items only ever enter or leave under the lock, so a
        // poisoned mutex holds consistent state; recover instead of
        // wedging the server on an unrelated panic.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`] — both return the item so the caller can
    /// refuse it explicitly.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues, blocking up to `timeout` for an item. A closed queue
    /// hands out its remaining items before reporting [`Pop::Closed`].
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if inner.closed => Pop::Closed,
                    None => Pop::Empty,
                };
            }
        }
    }

    /// Closes the queue: new pushes are refused, remaining items still
    /// drain, and every blocked popper wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo_and_overflow() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(1)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(2)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Empty));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push('a').unwrap();
        q.close();
        assert!(matches!(q.try_push('b'), Err(PushError::Closed('b'))));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item('a')));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Closed));
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(matches!(popper.join().unwrap(), Pop::Closed));
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(8));
        let total = 200;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    loop {
                        match q.pop(Duration::from_millis(50)) {
                            Pop::Item(_) => got += 1,
                            Pop::Empty => continue,
                            Pop::Closed => break,
                        }
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0u32;
        while pushed < total {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        let got: u32 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(got, total);
    }
}
