//! Server observability: lock-free counters and the `/stats` snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use gdp_serve::CacheStats;

use crate::reload::StoreSnapshot;

/// Per-variant served-query counters (successful answers only; a batch
/// counts each of its queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VariantCounts {
    /// Subset-count queries answered.
    pub subset_count: u64,
    /// Group-mass queries answered.
    pub group_mass: u64,
    /// Degree-histogram queries answered.
    pub degree_histogram: u64,
    /// Side-total queries answered.
    pub side_total: u64,
}

/// The memo-cache section of the snapshot (mirrors
/// [`gdp_serve::CacheStats`] plus the derived hit rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Requests answered straight from the memo table.
    pub hits: u64,
    /// Requests that computed a fresh answer.
    pub misses: u64,
    /// Entries displaced to admit newer keys.
    pub evictions: u64,
    /// Distinct memoized queries currently resident.
    pub entries: usize,
    /// The configured bound on resident entries.
    pub capacity: usize,
    /// `hits / (hits + misses)`, `0.0` before any request.
    pub hit_rate: f64,
}

impl From<CacheStats> for CacheSnapshot {
    fn from(stats: CacheStats) -> Self {
        Self {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            entries: stats.entries,
            capacity: stats.capacity,
            hit_rate: stats.hit_rate(),
        }
    }
}

/// The privacy-ledger line for one served release: what its epoch
/// charged and where the cross-epoch chain stands as of that epoch
/// (copied from the manifest's [`gdp_core::ManifestLedger`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerInfo {
    /// The release's dataset.
    pub dataset: String,
    /// The release's epoch.
    pub epoch: u64,
    /// ε charged by this epoch alone.
    pub epoch_epsilon: f64,
    /// δ charged by this epoch alone.
    pub epoch_delta: f64,
    /// ε spent by the whole chain up to and including this epoch.
    pub cumulative_epsilon: f64,
    /// δ spent by the whole chain up to and including this epoch.
    pub cumulative_delta: f64,
    /// The lifetime ε cap the chain was authorized against.
    pub total_epsilon: f64,
    /// The lifetime δ cap the chain was authorized against.
    pub total_delta: f64,
    /// ε still unspent as of this epoch (tolerance-clamped to `0`).
    pub remaining_epsilon: f64,
    /// Whether the chain was out of ε budget after this epoch.
    pub exhausted: bool,
}

/// One consistent-enough reading of every server counter — the
/// `GET /stats` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// `"ok"` while accepting, `"draining"` after shutdown began.
    pub status: String,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted off the listener.
    pub accepted: u64,
    /// Requests answered with a written response.
    pub completed: u64,
    /// Requests currently being processed by workers.
    pub in_flight: u64,
    /// Connections waiting in the bounded queue right now.
    pub queue_depth: usize,
    /// The queue's capacity.
    pub queue_capacity: usize,
    /// Connections refused with `503` because the queue was full.
    pub rejected_overflow: u64,
    /// Requests refused with `504` because their deadline expired.
    pub deadline_expired: u64,
    /// Connections dropped on a socket read/write timeout (slow-loris
    /// peers, stalled writers).
    pub io_timeouts: u64,
    /// Connections dropped on malformed or oversized requests.
    pub bad_requests: u64,
    /// Worker panics caught by the supervisor.
    pub worker_panics: u64,
    /// Workers respawned after a panic.
    pub worker_restarts: u64,
    /// Workers currently alive.
    pub workers: u64,
    /// Successful answers by query variant.
    pub per_variant: VariantCounts,
    /// Memo-cache counters from the answering service.
    pub cache: CacheSnapshot,
    /// Release-store lifecycle: contents, quarantine and reload health.
    pub store: StoreSnapshot,
    /// Per-release privacy-ledger state, one entry per served release
    /// whose manifest carries a ledger (pre-ledger artifacts are
    /// omitted). Sorted by `(dataset, epoch)`.
    pub ledgers: Vec<LedgerInfo>,
}

/// The live counters, shared across acceptor, workers and supervisor.
#[derive(Debug)]
pub struct ServerStats {
    started: Instant,
    /// Connections accepted off the listener.
    pub accepted: AtomicU64,
    /// Requests answered with a written response.
    pub completed: AtomicU64,
    /// Requests currently being processed (gauge).
    pub in_flight: AtomicU64,
    /// Connections refused with `503` on queue overflow.
    pub rejected_overflow: AtomicU64,
    /// Requests refused with `504` on deadline expiry.
    pub deadline_expired: AtomicU64,
    /// Connections dropped on socket timeouts.
    pub io_timeouts: AtomicU64,
    /// Connections dropped on malformed input.
    pub bad_requests: AtomicU64,
    /// Worker panics caught.
    pub worker_panics: AtomicU64,
    /// Workers respawned.
    pub worker_restarts: AtomicU64,
    /// Workers currently alive (gauge).
    pub live_workers: AtomicU64,
    /// Successful answers by variant index (see [`variant_index`]).
    pub per_variant: [AtomicU64; 4],
}

impl ServerStats {
    /// Fresh counters, uptime starting now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            rejected_overflow: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            io_timeouts: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            live_workers: AtomicU64::new(0),
            per_variant: Default::default(),
        }
    }

    /// Counts one successfully answered query of the given variant.
    pub fn count_variant(&self, name: &str) {
        if let Some(i) = variant_index(name) {
            self.per_variant[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Milliseconds since the server started — the clock `/stats` and
    /// the reload bookkeeping share.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Snapshots every counter. `draining`, queue gauges, the cache,
    /// store and ledger sections come from the caller (they live
    /// elsewhere).
    pub fn snapshot(
        &self,
        draining: bool,
        queue_depth: usize,
        queue_capacity: usize,
        cache: CacheStats,
        store: StoreSnapshot,
        ledgers: Vec<LedgerInfo>,
    ) -> StatsSnapshot {
        let v = |i: usize| self.per_variant[i].load(Ordering::Relaxed);
        StatsSnapshot {
            status: if draining { "draining" } else { "ok" }.to_string(),
            uptime_ms: self.uptime_ms(),
            accepted: self.accepted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth,
            queue_capacity,
            rejected_overflow: self.rejected_overflow.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            io_timeouts: self.io_timeouts.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            workers: self.live_workers.load(Ordering::Relaxed),
            per_variant: VariantCounts {
                subset_count: v(0),
                group_mass: v(1),
                degree_histogram: v(2),
                side_total: v(3),
            },
            cache: cache.into(),
            store,
            ledgers,
        }
    }
}

/// Builds the `/stats` ledger section from a store's current contents:
/// one [`LedgerInfo`] per release whose manifest carries a ledger,
/// sorted by `(dataset, epoch)` (both listings are already sorted).
pub fn ledger_section(store: &gdp_serve::ReleaseStore) -> Vec<LedgerInfo> {
    let mut out = Vec::new();
    for dataset in store.datasets() {
        for epoch in store.epochs(&dataset) {
            let Ok(indexed) = store.get(&dataset, epoch) else {
                continue;
            };
            let Some(ledger) = indexed.artifact().manifest().ledger.clone() else {
                continue;
            };
            out.push(LedgerInfo {
                dataset: dataset.clone(),
                epoch,
                epoch_epsilon: ledger.epoch_epsilon,
                epoch_delta: ledger.epoch_delta,
                cumulative_epsilon: ledger.cumulative_epsilon,
                cumulative_delta: ledger.cumulative_delta,
                total_epsilon: ledger.total_epsilon,
                total_delta: ledger.total_delta,
                remaining_epsilon: ledger.remaining_epsilon(),
                exhausted: ledger.exhausted(),
            });
        }
    }
    out
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Maps a [`Query::name`](gdp_serve::Query::name) to its counter slot.
pub fn variant_index(name: &str) -> Option<usize> {
    match name {
        "subset_count" => Some(0),
        "group_mass" => Some(1),
        "degree_histogram" => Some(2),
        "side_total" => Some(3),
        _ => None,
    }
}
