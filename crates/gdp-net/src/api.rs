//! Typed JSON request/response payloads and the HTTP error taxonomy.
//!
//! One wire type per endpoint body, all deriving the in-tree serde —
//! the same [`Query`] type the answering service consumes is embedded
//! verbatim, so the HTTP layer adds no re-interpretation step between
//! the socket and [`AnswerService::answer_typed`](gdp_serve::AnswerService::answer_typed).
//! Scalars travel as JSON floats with shortest round-trip precision,
//! which is what makes served answers bit-identical to direct calls.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use gdp_core::CoreError;
use gdp_serve::{OpenReport, Query, ServeError, TypedAnswer};

use crate::http::Response;

/// `POST /v1/answer` body: one typed query against one release level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerRequest {
    /// Dataset key of the published release.
    pub dataset: String,
    /// Epoch of the published release.
    pub epoch: u64,
    /// The caller's privilege (finest hierarchy level it may read).
    pub privilege: usize,
    /// The hierarchy level to answer from.
    pub level: usize,
    /// The typed query.
    pub query: Query,
}

/// `POST /v1/answer_batch` body: many queries, one envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchAnswerRequest {
    /// Dataset key of the published release.
    pub dataset: String,
    /// Epoch of the published release.
    pub epoch: u64,
    /// The caller's privilege (finest hierarchy level it may read).
    pub privilege: usize,
    /// The hierarchy level to answer from.
    pub level: usize,
    /// The typed queries, answered under one privilege check.
    pub queries: Vec<Query>,
}

/// A query answer on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireAnswer {
    /// A scalar statistic.
    Scalar(f64),
    /// Histogram bins `0..=max_degree`.
    Histogram(Vec<f64>),
}

impl From<&TypedAnswer> for WireAnswer {
    fn from(answer: &TypedAnswer) -> Self {
        match answer {
            TypedAnswer::Scalar(v) => WireAnswer::Scalar(*v),
            TypedAnswer::Histogram(bins) => WireAnswer::Histogram(bins.to_vec()),
        }
    }
}

impl From<WireAnswer> for TypedAnswer {
    fn from(answer: WireAnswer) -> Self {
        match answer {
            WireAnswer::Scalar(v) => TypedAnswer::Scalar(v),
            WireAnswer::Histogram(bins) => TypedAnswer::Histogram(Arc::from(bins)),
        }
    }
}

/// `POST /v1/answer` success body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerResponse {
    /// The answer.
    pub answer: WireAnswer,
}

/// `POST /v1/answer_batch` success body (answers in query order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchAnswerResponse {
    /// One answer per query, in order.
    pub answers: Vec<WireAnswer>,
}

/// Every non-2xx response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable error kind (see `docs/operations.md`).
    pub kind: String,
    /// Human-readable message.
    pub error: String,
}

/// One published release, as listed by `GET /v1/releases` — enough for
/// a client (or the load generator) to construct valid queries without
/// out-of-band knowledge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseInfo {
    /// Dataset key.
    pub dataset: String,
    /// Epoch.
    pub epoch: u64,
    /// Number of hierarchy levels.
    pub levels: usize,
    /// Left-side node count.
    pub left_nodes: u32,
    /// Right-side node count.
    pub right_nodes: u32,
    /// Left-side group count per level (index = level).
    pub left_groups: Vec<u32>,
    /// Right-side group count per level (index = level).
    pub right_groups: Vec<u32>,
}

/// `GET /v1/releases` body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleasesResponse {
    /// Every published release, datasets ascending, epochs ascending.
    pub releases: Vec<ReleaseInfo>,
}

/// `POST /v1/admin/reload` success body: the store re-scan's per-file
/// outcomes plus a loggable one-liner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReloadResponse {
    /// One-line scan summary (`"2 loaded, … 1 quarantined, …"`).
    pub summary: String,
    /// Every directory entry's typed outcome.
    pub report: OpenReport,
}

/// Maps a [`ServeError`] to its HTTP status and stable error kind.
///
/// The taxonomy: denial is `403`, asking for something that was never
/// published is `404`, a malformed query is `400`, and a serving-side
/// invariant failure is `500`. Backpressure (`503`) and deadline expiry
/// (`504`) never reach this function — they are produced before the
/// service is called.
pub fn error_status(err: &ServeError) -> (u16, &'static str) {
    match err {
        ServeError::Core(CoreError::AccessDenied { .. }) => (403, "access_denied"),
        ServeError::Core(CoreError::LevelOutOfRange { .. }) => (404, "level_out_of_range"),
        ServeError::UnknownRelease { .. } => (404, "unknown_release"),
        ServeError::LevelNotIndexed { .. } | ServeError::StatisticNotReleased { .. } => {
            (404, "not_released")
        }
        ServeError::Internal(_) => (500, "internal"),
        ServeError::Core(_) => (400, "bad_query"),
        // Store/scan-time errors leaking into a request are a serving
        // bug, not a client one.
        _ => (500, "internal"),
    }
}

/// Builds the error [`Response`] for a [`ServeError`].
pub fn error_body(err: &ServeError) -> Response {
    let (status, kind) = error_status(err);
    Response::json(
        status,
        &ErrorBody {
            kind: kind.to_string(),
            error: err.to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_graph::Side;
    use gdp_serve::SubsetQuery;

    #[test]
    fn request_bodies_round_trip_through_json() {
        let req = AnswerRequest {
            dataset: "dblp".to_string(),
            epoch: 7,
            privilege: 1,
            level: 2,
            query: Query::SubsetCount(SubsetQuery {
                side: Side::Left,
                nodes: vec![3, 1, 4],
            }),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: AnswerRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);

        let batch = BatchAnswerRequest {
            dataset: "dblp".to_string(),
            epoch: 7,
            privilege: 0,
            level: 0,
            queries: vec![
                Query::GroupMass {
                    side: Side::Right,
                    group: 2,
                },
                Query::DegreeHistogram { side: Side::Left },
                Query::SideTotal { side: Side::Left },
            ],
        };
        let json = serde_json::to_string(&batch).unwrap();
        let back: BatchAnswerRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(batch, back);
    }

    #[test]
    fn answers_round_trip_bit_exactly() {
        // Adversarial floats: subnormal, negative zero, many digits.
        for v in [0.1 + 0.2, -0.0, 5e-324, 1.7976931348623157e308, -123.456789012345] {
            let wire = WireAnswer::Scalar(v);
            let json = serde_json::to_string(&wire).unwrap();
            let back: WireAnswer = serde_json::from_str(&json).unwrap();
            match back {
                WireAnswer::Scalar(got) => assert_eq!(got.to_bits(), v.to_bits(), "{v:?}"),
                other => panic!("wrong shape: {other:?}"),
            }
        }
        let wire = WireAnswer::Histogram(vec![1.5, 0.0, -2.25e-10]);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireAnswer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wire);
        // Wire answers convert losslessly to typed answers and back.
        let typed: TypedAnswer = wire.clone().into();
        assert_eq!(WireAnswer::from(&typed), wire);
    }

    #[test]
    fn error_taxonomy_is_stable() {
        let (status, kind) = error_status(&ServeError::UnknownRelease {
            dataset: "x".to_string(),
            epoch: 1,
        });
        assert_eq!((status, kind), (404, "unknown_release"));
        let (status, kind) = error_status(&ServeError::Core(CoreError::AccessDenied {
            privilege: 3,
            requested_level: 1,
            finest_allowed: 3,
        }));
        assert_eq!((status, kind), (403, "access_denied"));
        let (status, kind) = error_status(&ServeError::Internal("bug".to_string()));
        assert_eq!((status, kind), (500, "internal"));
        let (status, kind) = error_status(&ServeError::LevelNotIndexed { level: 2 });
        assert_eq!((status, kind), (404, "not_released"));
        let resp = error_body(&ServeError::LevelNotIndexed { level: 2 });
        assert_eq!(resp.status, 404);
        let body: ErrorBody = serde_json::from_str(&String::from_utf8(resp.body).unwrap()).unwrap();
        assert_eq!(body.kind, "not_released");
        assert!(body.error.contains("level 2"));
    }
}
