//! Lane-vs-scalar equivalence property suite.
//!
//! Every chunked kernel must be **bit-identical** to its scalar
//! fallback at every length — in particular at the remainder-heavy
//! lengths `0`, `1`, `LANES-1`, `LANES`, `LANES+1` — and for the `f64`
//! gather across the awkward corners of the float domain (subnormals,
//! negative zero, mixed magnitudes), because summation order is part of
//! the workspace's released-answer contract.

use proptest::prelude::*;

use gdp_lanes::{
    any_ge, any_ge_scalar, gather_map_sum, gather_map_sum_scalar, gather_u32,
    gather_u32_scalar, gather_u64, gather_u64_scalar, U32_LANES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic value pool exercising subnormals, signed zeros, and
/// magnitudes far enough apart that any add reordering changes bits.
fn awkward_f64(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0u32..8) {
        0 => f64::MIN_POSITIVE / 2.0,       // subnormal
        1 => -f64::MIN_POSITIVE / 4.0,      // negative subnormal
        2 => -0.0,
        3 => 0.0,
        4 => 1e16,
        5 => -1e16,
        6 => rng.gen_range(-1.0..1.0),
        _ => rng.gen_range(-1e6..1e6),
    }
}

/// Lengths that hit every chunk/remainder shape around the lane width.
fn boundary_lengths() -> Vec<usize> {
    vec![
        0,
        1,
        U32_LANES - 1,
        U32_LANES,
        U32_LANES + 1,
        2 * U32_LANES - 1,
        2 * U32_LANES,
        2 * U32_LANES + 1,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gather_map_sum_matches_scalar_bitwise(
        len in 0usize..200,
        groups in 1u32..50,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx: Vec<u32> = (0..len as u32).collect();
        let map: Vec<u32> = (0..len).map(|_| rng.gen_range(0..groups)).collect();
        let values: Vec<f64> = (0..groups).map(|_| awkward_f64(&mut rng)).collect();
        let lane = gather_map_sum(&idx, &map, &values);
        let scalar = gather_map_sum_scalar(&idx, &map, &values);
        prop_assert_eq!(lane.to_bits(), scalar.to_bits());
    }

    #[test]
    fn gather_map_sum_matches_scalar_at_lane_boundaries(
        groups in 1u32..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for len in boundary_lengths() {
            let idx: Vec<u32> = (0..len as u32).collect();
            let map: Vec<u32> = (0..len).map(|_| rng.gen_range(0..groups)).collect();
            let values: Vec<f64> = (0..groups).map(|_| awkward_f64(&mut rng)).collect();
            let lane = gather_map_sum(&idx, &map, &values);
            let scalar = gather_map_sum_scalar(&idx, &map, &values);
            prop_assert_eq!(lane.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn any_ge_matches_scalar(len in 0usize..100, bound in 0u32..150, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vals: Vec<u32> = (0..len).map(|_| rng.gen_range(0..140)).collect();
        prop_assert_eq!(any_ge(&vals, bound), any_ge_scalar(&vals, bound));
    }

    #[test]
    fn gather_u32_matches_scalar(
        len in 0usize..100,
        table_len in 1u32..60,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table: Vec<u32> = (0..table_len).map(|_| rng.gen()).collect();
        let idx: Vec<u32> = (0..len).map(|_| rng.gen_range(0..table_len)).collect();
        let mut lane = vec![0u32; len];
        let mut scalar = vec![0u32; len];
        gather_u32(&table, &idx, &mut lane);
        gather_u32_scalar(&table, &idx, &mut scalar);
        prop_assert_eq!(lane, scalar);
    }

    #[test]
    fn gather_u64_matches_scalar(
        len in 0usize..100,
        table_len in 1u32..60,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table: Vec<u64> = (0..table_len).map(|_| rng.gen()).collect();
        let idx: Vec<u32> = (0..len).map(|_| rng.gen_range(0..table_len)).collect();
        let mut lane = vec![0u64; len];
        let mut scalar = vec![0u64; len];
        gather_u64(&table, &idx, &mut lane);
        gather_u64_scalar(&table, &idx, &mut scalar);
        prop_assert_eq!(lane, scalar);
    }
}
