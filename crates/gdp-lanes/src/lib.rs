//! Portable fixed-width lane abstraction for the workspace's hot kernels.
//!
//! The disclosure pipeline's inner loops — the subset-count premass
//! gather in `gdp-serve`, the pair-count edge fold in `gdp-graph`, the
//! batched noise transforms in `gdp-mechanisms` — are memory-bound
//! sweeps whose scalar forms interleave bounds checks, bitmap updates
//! and dependent loads in one loop body, which stops the compiler from
//! vectorizing any of it. This crate provides the restructuring tool:
//! **fixed-width lane types implemented as plain arrays** ([`U32x8`],
//! [`F64x8`], [`F64x4`]) plus chunked kernels built on them, written so
//! the independent per-lane work (loads, compares, elementwise
//! transforms) sits in straight-line `[T; LANES]` loops the compiler
//! can autovectorize on any target — no intrinsics, no `unsafe`, no
//! target features. The style follows the portable lane-width backends
//! of SIMD field-arithmetic crates: a lane type is just an array with
//! elementwise ops, and the scalar loop remains the pinned fallback.
//!
//! # The bit-pinned summation contract
//!
//! Floating-point summation **order** is part of this workspace's
//! released-answer contract: a subset estimate is defined as a fold in
//! subset order, and artifacts sealed yesterday must serve the same
//! bits tomorrow. Lane kernels therefore never reorder `f64` additions.
//! Where a chunk of lanes feeds an accumulator, the loads are lane-wise
//! (independent, vectorizable) and the reduction is **one ordered
//! horizontal fold** ([`F64x8::fold_ordered`]) — exactly the scalar
//! add sequence, so every kernel here is bit-identical to its scalar
//! fallback by construction, and property tests in this crate and at
//! every call site pin it.
//!
//! Every chunked kernel ships next to its scalar form
//! (`*_scalar`); call sites keep using the scalar form as the
//! equivalence baseline and criterion comparison point, the same
//! convention as `cut_utilities_naive` and `PairCounts::compute_naive`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Lane count of the `u32`-shaped lane type ([`U32x8`]): 8 × 32 bits,
/// one 256-bit vector register on common targets.
pub const U32_LANES: usize = 8;

/// Lane count of the wide `f64` lane type ([`F64x8`]), matched to
/// [`U32_LANES`] so a `u32` index chunk drives one `f64` load chunk.
pub const F64_LANES_WIDE: usize = 8;

/// Lane count of the narrow `f64` lane type ([`F64x4`]): 4 × 64 bits,
/// one 256-bit vector register on common targets.
pub const F64_LANES: usize = 4;

/// Eight `u32` lanes as a plain array — index chunks, bound masks and
/// `u32`→`u32` gathers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct U32x8(pub [u32; U32_LANES]);

impl U32x8 {
    /// All lanes set to `x`.
    #[inline]
    pub fn splat(x: u32) -> Self {
        Self([x; U32_LANES])
    }

    /// Loads the first [`U32_LANES`] elements of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is shorter than [`U32_LANES`].
    #[inline]
    pub fn load(slice: &[u32]) -> Self {
        Self(slice[..U32_LANES].try_into().expect("lane-width slice"))
    }

    /// Whether any lane is `>= bound` — a branchless lane-wise compare
    /// folded to one flag (the hoisted bounds check of a gather chunk).
    #[inline]
    pub fn any_ge(self, bound: u32) -> bool {
        let mut mask = false;
        for x in self.0 {
            mask |= x >= bound;
        }
        mask
    }

    /// Lane-wise gather `table[self[i]]` — eight independent loads.
    ///
    /// # Panics
    ///
    /// Panics if any lane indexes out of `table`'s bounds; callers mask
    /// with [`U32x8::any_ge`] first on untrusted indices.
    #[inline]
    pub fn gather(self, table: &[u32]) -> Self {
        let mut out = [0u32; U32_LANES];
        for (slot, i) in out.iter_mut().zip(self.0) {
            *slot = table[i as usize];
        }
        Self(out)
    }
}

/// Eight `f64` lanes as a plain array — the gather-side counterpart of
/// [`U32x8`]: loads are lane-wise, reduction is ordered.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct F64x8(pub [f64; F64_LANES_WIDE]);

impl F64x8 {
    /// Lane-wise gather `values[idx[i]]` — eight independent loads with
    /// no cross-lane dependency, the vectorizable half of a gather-sum.
    ///
    /// # Panics
    ///
    /// Panics if any lane of `idx` indexes out of `values`' bounds.
    #[inline]
    pub fn gather(idx: U32x8, values: &[f64]) -> Self {
        let mut out = [0.0f64; F64_LANES_WIDE];
        for (slot, i) in out.iter_mut().zip(idx.0) {
            *slot = values[i as usize];
        }
        Self(out)
    }

    /// **Ordered** horizontal reduction: folds the lanes into `acc`
    /// strictly left to right — `(((acc + l0) + l1) + …) + l7` — the
    /// exact add sequence a scalar loop performs, so chunked
    /// accumulation stays bit-identical to the scalar fallback.
    #[inline]
    pub fn fold_ordered(self, acc: f64) -> f64 {
        let mut total = acc;
        for x in self.0 {
            total += x;
        }
        total
    }
}

/// Four `f64` lanes as a plain array — elementwise transform chunks
/// (the batched noise-sampling shape).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct F64x4(pub [f64; F64_LANES]);

impl F64x4 {
    /// All lanes set to `x`.
    #[inline]
    pub fn splat(x: f64) -> Self {
        Self([x; F64_LANES])
    }

    /// Loads the first [`F64_LANES`] elements of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is shorter than [`F64_LANES`].
    #[inline]
    pub fn load(slice: &[f64]) -> Self {
        Self(slice[..F64_LANES].try_into().expect("lane-width slice"))
    }

    /// Applies `f` to every lane independently. The closure must be a
    /// pure elementwise transform for the chunked/scalar equivalence to
    /// hold (it trivially does: each output lane sees exactly the ops
    /// the scalar loop would run on that element).
    #[inline]
    pub fn map(self, f: impl Fn(f64) -> f64) -> Self {
        let mut out = self.0;
        for slot in &mut out {
            *slot = f(*slot);
        }
        Self(out)
    }

    /// Stores the lanes into the first [`F64_LANES`] slots of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than [`F64_LANES`].
    #[inline]
    pub fn store(self, out: &mut [f64]) {
        out[..F64_LANES].copy_from_slice(&self.0);
    }
}

impl std::ops::Add for F64x4 {
    type Output = Self;

    /// Lane-wise `self + other`.
    #[inline]
    fn add(self, other: Self) -> Self {
        let mut out = self.0;
        for (slot, x) in out.iter_mut().zip(other.0) {
            *slot += x;
        }
        Self(out)
    }
}

/// Whether any element of `vals` is `>= bound`, chunked [`U32_LANES`]
/// wide: each chunk is one branchless lane compare, so the loop carries
/// a single well-predicted branch per chunk instead of one per element.
///
/// Equivalent to [`any_ge_scalar`] (pinned by property tests).
#[inline]
pub fn any_ge(vals: &[u32], bound: u32) -> bool {
    let mut chunks = vals.chunks_exact(U32_LANES);
    for chunk in chunks.by_ref() {
        if U32x8::load(chunk).any_ge(bound) {
            return true;
        }
    }
    chunks.remainder().iter().any(|&v| v >= bound)
}

/// Scalar fallback of [`any_ge`].
#[inline]
pub fn any_ge_scalar(vals: &[u32], bound: u32) -> bool {
    vals.iter().any(|&v| v >= bound)
}

/// The double-gather ordered sum at the heart of the subset-count
/// estimate: `Σ values[map[idx[i]]]`, accumulated **strictly in index
/// order**. Chunks of [`U32_LANES`] indices drive two lane-wise gather
/// stages (independent loads the compiler can vectorize or at least
/// fully pipeline — nothing in the chunk body branches), then one
/// ordered horizontal fold per chunk preserves the scalar add sequence
/// bit for bit.
///
/// Callers validate indices first ([`any_ge`] against `map.len()`);
/// out-of-range indices panic exactly like the scalar form.
///
/// Bit-identical to [`gather_map_sum_scalar`] (pinned by property
/// tests here and at the `gdp-serve` call site).
///
/// # Panics
///
/// Panics if any `idx[i]` is out of `map`'s bounds or any `map[idx[i]]`
/// is out of `values`' bounds.
#[inline]
pub fn gather_map_sum(idx: &[u32], map: &[u32], values: &[f64]) -> f64 {
    let mut total = 0.0f64;
    let mut chunks = idx.chunks_exact(U32_LANES);
    for chunk in chunks.by_ref() {
        let groups = U32x8::load(chunk).gather(map);
        total = F64x8::gather(groups, values).fold_ordered(total);
    }
    for &i in chunks.remainder() {
        total += values[map[i as usize] as usize];
    }
    total
}

/// Scalar fallback of [`gather_map_sum`]: the plain pointer-chasing
/// fold, kept as the equivalence baseline and criterion comparison.
#[inline]
pub fn gather_map_sum_scalar(idx: &[u32], map: &[u32], values: &[f64]) -> f64 {
    let mut total = 0.0f64;
    for &i in idx {
        total += values[map[i as usize] as usize];
    }
    total
}

/// Chunked `u32` gather `out[i] = table[idx[i]]` — the
/// structure-of-arrays scatter step of the pair-count edge sweep. Each
/// chunk is two straight-line lane loops (load indices, gather) with no
/// per-element branching.
///
/// Identical to [`gather_u32_scalar`] (pinned by property tests).
///
/// # Panics
///
/// Panics if any index is out of `table`'s bounds, or if `out` is
/// shorter than `idx`.
#[inline]
pub fn gather_u32(table: &[u32], idx: &[u32], out: &mut [u32]) {
    let mut chunks = idx.chunks_exact(U32_LANES);
    let mut out_chunks = out.chunks_exact_mut(U32_LANES);
    for (chunk, out_chunk) in chunks.by_ref().zip(out_chunks.by_ref()) {
        let gathered = U32x8::load(chunk).gather(table);
        out_chunk.copy_from_slice(&gathered.0);
    }
    for (&i, slot) in chunks.remainder().iter().zip(out_chunks.into_remainder()) {
        *slot = table[i as usize];
    }
}

/// Scalar fallback of [`gather_u32`].
#[inline]
pub fn gather_u32_scalar(table: &[u32], idx: &[u32], out: &mut [u32]) {
    for (&i, slot) in idx.iter().zip(out.iter_mut()) {
        *slot = table[i as usize];
    }
}

/// Chunked `u64` gather `out[i] = table[idx[i]]` — the count-emission
/// step of the pair-count row fold (touched columns index a dense
/// accumulator). Chunks are [`U32_LANES`]/2 wide: four 64-bit lanes,
/// one 256-bit register on common targets.
///
/// Identical to [`gather_u64_scalar`] (pinned by property tests).
///
/// # Panics
///
/// Panics if any index is out of `table`'s bounds, or if `out` is
/// shorter than `idx`.
#[inline]
pub fn gather_u64(table: &[u64], idx: &[u32], out: &mut [u64]) {
    const LANES: usize = U32_LANES / 2;
    let mut chunks = idx.chunks_exact(LANES);
    let mut out_chunks = out.chunks_exact_mut(LANES);
    for (chunk, out_chunk) in chunks.by_ref().zip(out_chunks.by_ref()) {
        let mut lanes = [0u64; LANES];
        for (slot, &i) in lanes.iter_mut().zip(chunk) {
            *slot = table[i as usize];
        }
        out_chunk.copy_from_slice(&lanes);
    }
    for (&i, slot) in chunks.remainder().iter().zip(out_chunks.into_remainder()) {
        *slot = table[i as usize];
    }
}

/// Scalar fallback of [`gather_u64`].
#[inline]
pub fn gather_u64_scalar(table: &[u64], idx: &[u32], out: &mut [u64]) {
    for (&i, slot) in idx.iter().zip(out.iter_mut()) {
        *slot = table[i as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_widths_are_register_shaped() {
        assert_eq!(U32_LANES, 8);
        assert_eq!(F64_LANES_WIDE, 8);
        assert_eq!(F64_LANES, 4);
    }

    #[test]
    fn u32x8_mask_and_gather() {
        let v = U32x8::load(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(!v.any_ge(8));
        assert!(v.any_ge(7));
        assert!(U32x8::splat(3).any_ge(3));
        let table: Vec<u32> = (0..8).map(|i| 10 * i).collect();
        assert_eq!(v.gather(&table).0, [0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn f64x8_fold_is_strictly_ordered() {
        // A sum whose value depends on add order: big + tiny pairs.
        let lanes = F64x8([1e16, 1.0, -1e16, 1.0, 1e16, 1.0, -1e16, 1.0]);
        let mut scalar = 0.5;
        for x in lanes.0 {
            scalar += x;
        }
        assert_eq!(lanes.fold_ordered(0.5).to_bits(), scalar.to_bits());
    }

    #[test]
    fn f64x4_elementwise_ops() {
        let a = F64x4::load(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.map(f64::abs).0, [1.0, 2.0, 3.0, 4.0]);
        assert_eq!((a + F64x4::splat(1.0)).0, [2.0, -1.0, 4.0, -3.0]);
        let mut out = [0.0; 4];
        a.store(&mut out);
        assert_eq!(out, [1.0, -2.0, 3.0, -4.0]);
    }

    #[test]
    fn kernels_handle_empty_and_remainder_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let idx: Vec<u32> = (0..len as u32).collect();
            let map: Vec<u32> = (0..len as u32).map(|i| i % 4).collect();
            let values = [0.25, -1.5, 3.0, 7.5];
            if len > 0 {
                assert_eq!(
                    gather_map_sum(&idx, &map, &values).to_bits(),
                    gather_map_sum_scalar(&idx, &map, &values).to_bits(),
                    "len {len}"
                );
            } else {
                assert_eq!(gather_map_sum(&idx, &map, &values), 0.0);
            }
            assert_eq!(any_ge(&idx, len as u32), any_ge_scalar(&idx, len as u32));
            assert_eq!(any_ge(&idx, 1), any_ge_scalar(&idx, 1));
            let table: Vec<u32> = (0..4u32).map(|i| 100 + i).collect();
            let small_idx: Vec<u32> = (0..len as u32).map(|i| i % 4).collect();
            let mut a = vec![0u32; len];
            let mut b = vec![0u32; len];
            gather_u32(&table, &small_idx, &mut a);
            gather_u32_scalar(&table, &small_idx, &mut b);
            assert_eq!(a, b, "len {len}");
            let wide: Vec<u64> = (0..4u64).map(|i| u64::MAX - i).collect();
            let mut wa = vec![0u64; len];
            let mut wb = vec![0u64; len];
            gather_u64(&wide, &small_idx, &mut wa);
            gather_u64_scalar(&wide, &small_idx, &mut wb);
            assert_eq!(wa, wb, "len {len}");
        }
    }

    #[test]
    #[should_panic]
    fn gather_panics_out_of_bounds_like_scalar() {
        let _ = gather_map_sum(&[3], &[0, 0, 0], &[1.0]);
    }
}
