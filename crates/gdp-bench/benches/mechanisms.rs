//! Micro-benchmarks of the DP primitives: per-sample cost of each noise
//! mechanism and of the analytic Gaussian calibration search.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_mechanisms::{
    Delta, Epsilon, ExponentialMechanism, GaussianMechanism, GeometricMechanism, L1Sensitivity,
    L2Sensitivity, LaplaceMechanism,
};

fn bench_mechanisms(c: &mut Criterion) {
    let eps = Epsilon::new(0.5).unwrap();
    let delta = Delta::new(1e-6).unwrap();
    let mut rng = StdRng::seed_from_u64(1);

    let laplace = LaplaceMechanism::new(eps, L1Sensitivity::new(10.0).unwrap()).unwrap();
    c.bench_function("laplace_randomize", |b| {
        b.iter(|| laplace.randomize(black_box(1000.0), &mut rng))
    });

    let gaussian =
        GaussianMechanism::classic(eps, delta, L2Sensitivity::new(10.0).unwrap()).unwrap();
    c.bench_function("gaussian_randomize", |b| {
        b.iter(|| gaussian.randomize(black_box(1000.0), &mut rng))
    });

    let geometric = GeometricMechanism::new(eps, L1Sensitivity::new(10.0).unwrap()).unwrap();
    c.bench_function("geometric_randomize", |b| {
        b.iter(|| geometric.randomize(black_box(1000), &mut rng))
    });

    let expo = ExponentialMechanism::new(eps, L1Sensitivity::unit()).unwrap();
    let utilities: Vec<f64> = (0..64).map(|i| -((i as f64) - 32.0).abs()).collect();
    c.bench_function("exponential_select_64", |b| {
        b.iter(|| expo.select(black_box(&utilities), &mut rng).unwrap())
    });

    c.bench_function("analytic_gaussian_calibration", |b| {
        b.iter(|| {
            GaussianMechanism::analytic(
                black_box(eps),
                black_box(delta),
                L2Sensitivity::new(1234.5).unwrap(),
            )
            .unwrap()
            .sigma()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_mechanisms
);
criterion_main!(benches);
