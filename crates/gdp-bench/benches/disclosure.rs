//! Benchmarks of Phase 2 and the end-to-end pipeline — the full
//! Figure-1 inner loop (specialize once, disclose repeatedly).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::{
    DisclosureConfig, MultiLevelDiscloser, NoiseMechanism, Query, SpecializationConfig,
    Specializer,
};
use gdp_datagen::{DblpConfig, DblpGenerator};

fn bench_disclosure(c: &mut Criterion) {
    let config = DblpConfig {
        authors: 10_000,
        papers: 18_000,
        mean_authors_per_paper: 2.8,
        max_authors_per_paper: 24,
        zipf_exponent: 1.15,
        max_papers_per_author: 20,
    };
    let graph = DblpGenerator::new(config).generate(&mut StdRng::seed_from_u64(7));
    let hierarchy = Specializer::new(SpecializationConfig::median(8).unwrap())
        .specialize(&graph, &mut StdRng::seed_from_u64(8))
        .unwrap();

    let mut group = c.benchmark_group("disclose_10_levels");
    for mech in [
        NoiseMechanism::GaussianClassic,
        NoiseMechanism::GaussianAnalytic,
        NoiseMechanism::Laplace,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mech:?}")),
            &mech,
            |b, &mech| {
                let discloser = MultiLevelDiscloser::new(
                    DisclosureConfig::count_only(0.5, 1e-6)
                        .unwrap()
                        .with_mechanism(mech),
                );
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(9);
                    black_box(discloser.disclose(&graph, &hierarchy, &mut rng).unwrap())
                })
            },
        );
    }
    group.finish();

    c.bench_function("disclose_with_vector_queries", |b| {
        let discloser = MultiLevelDiscloser::new(
            DisclosureConfig::count_only(0.5, 1e-6)
                .unwrap()
                .with_queries(vec![
                    Query::TotalAssociations,
                    Query::PerGroupCounts,
                    Query::LeftDegreeHistogram { max_degree: 32 },
                ]),
        );
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(10);
            black_box(discloser.disclose(&graph, &hierarchy, &mut rng).unwrap())
        })
    });

    c.bench_function("end_to_end_pipeline", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let h = Specializer::new(SpecializationConfig::paper_default(6).unwrap())
                .specialize(&graph, &mut rng)
                .unwrap();
            let discloser =
                MultiLevelDiscloser::new(DisclosureConfig::count_only(0.5, 1e-6).unwrap());
            black_box(discloser.disclose(&graph, &h, &mut rng).unwrap())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_disclosure
);
criterion_main!(benches);
