//! Benchmarks of Phase 1: specialization cost per strategy and depth.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::scoring::{cut_utilities, cut_utilities_naive};
use gdp_core::{SpecializationConfig, Specializer, SplitStrategy};
use gdp_datagen::{models, DblpConfig, DblpGenerator};

fn bench_specialize(c: &mut Criterion) {
    let config = DblpConfig {
        authors: 10_000,
        papers: 18_000,
        mean_authors_per_paper: 2.8,
        max_authors_per_paper: 24,
        zipf_exponent: 1.15,
        max_papers_per_author: 20,
    };
    let graph = DblpGenerator::new(config).generate(&mut StdRng::seed_from_u64(4));

    let mut group = c.benchmark_group("specialize_50k_edges");
    for strategy in [
        SplitStrategy::Exponential,
        SplitStrategy::Median,
        SplitStrategy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let mut cfg = SpecializationConfig::paper_default(8).unwrap();
                cfg.strategy = strategy;
                let spec = Specializer::new(cfg);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(5);
                    black_box(spec.specialize(&graph, &mut rng).unwrap())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("specialize_depth");
    for rounds in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            let spec = Specializer::new(SpecializationConfig::median(r).unwrap());
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                black_box(spec.specialize(&graph, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

/// The ISSUE-1 acceptance benchmark: prefix-sum cut scoring vs the naive
/// per-candidate rescan on a 100k-edge graph's first-round block with 64
/// candidate cuts.
fn bench_cut_scoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(20);
    let graph = models::erdos_renyi(&mut rng, 20_000, 20_000, 100_000);
    let degrees = graph.left_degrees();
    let mut block: Vec<u32> = (0..graph.left_count()).collect();
    block.sort_unstable_by_key(|&n| (degrees[n as usize], n));
    // Evenly spaced candidate cuts, capped at 64 — the paper default.
    let available = block.len() - 1;
    let candidates: Vec<usize> = (1..=64usize).map(|i| 1 + (i - 1) * available / 64).collect();

    let mut group = c.benchmark_group("cut_scoring_100k_edges_64_candidates");
    group.bench_with_input(
        BenchmarkId::from_parameter("prefix_sum"),
        &(),
        |b, ()| {
            b.iter(|| black_box(cut_utilities(&block, &degrees, &candidates)));
        },
    );
    group.bench_with_input(BenchmarkId::from_parameter("naive"), &(), |b, ()| {
        b.iter(|| black_box(cut_utilities_naive(&block, &degrees, &candidates)));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_specialize, bench_cut_scoring
);
criterion_main!(benches);
