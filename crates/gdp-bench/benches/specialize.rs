//! Benchmarks of Phase 1: specialization cost per strategy and depth.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::{SpecializationConfig, Specializer, SplitStrategy};
use gdp_datagen::{DblpConfig, DblpGenerator};

fn bench_specialize(c: &mut Criterion) {
    let config = DblpConfig {
        authors: 10_000,
        papers: 18_000,
        mean_authors_per_paper: 2.8,
        max_authors_per_paper: 24,
        zipf_exponent: 1.15,
        max_papers_per_author: 20,
    };
    let graph = DblpGenerator::new(config).generate(&mut StdRng::seed_from_u64(4));

    let mut group = c.benchmark_group("specialize_50k_edges");
    for strategy in [
        SplitStrategy::Exponential,
        SplitStrategy::Median,
        SplitStrategy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                let mut cfg = SpecializationConfig::paper_default(8).unwrap();
                cfg.strategy = strategy;
                let spec = Specializer::new(cfg);
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(5);
                    black_box(spec.specialize(&graph, &mut rng).unwrap())
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("specialize_depth");
    for rounds in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            let spec = Specializer::new(SpecializationConfig::median(r).unwrap());
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(6);
                black_box(spec.specialize(&graph, &mut rng).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_specialize
);
criterion_main!(benches);
