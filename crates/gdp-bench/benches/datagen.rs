//! Benchmarks of the synthetic workload generators, including the
//! streaming-engine vs incremental-builder pairs the `datagen_1m`
//! entries of `BENCH_pipeline.json` track at full scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_datagen::engine::GraphModel;
use gdp_datagen::zipf::ZipfSampler;
use gdp_datagen::{models, DblpConfig, DblpGenerator};

fn bench_datagen(c: &mut Criterion) {
    c.bench_function("zipf_sample_1m_universe", |b| {
        let z = ZipfSampler::new(1_000_000, 1.15).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        b.iter(|| black_box(z.sample(&mut rng)))
    });

    // The ISSUE-4 satellite pair: 1k draws through the per-draw
    // closed-form path vs the table-assisted batched path (divide the
    // reported ns/iter by 1024 for per-draw cost).
    c.bench_function("zipf_sample_per_draw_1m_universe_1k", |b| {
        let z = ZipfSampler::new(1_000_000, 1.15).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut buf = vec![0u64; 1024];
        b.iter(|| {
            for slot in buf.iter_mut() {
                *slot = z.sample(&mut rng);
            }
            black_box(buf[1023])
        })
    });
    c.bench_function("zipf_sample_into_1m_universe_1k", |b| {
        let z = ZipfSampler::new(1_000_000, 1.15).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut buf = vec![0u64; 1024];
        b.iter(|| {
            z.sample_into(&mut buf, &mut rng);
            black_box(buf[1023])
        })
    });

    c.bench_function("dblp_laptop_scale_generate", |b| {
        let gen = DblpGenerator::new(DblpConfig::laptop_scale());
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(13);
            black_box(gen.generate(&mut rng))
        })
    });

    c.bench_function("erdos_renyi_100k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(14);
            black_box(models::erdos_renyi(&mut rng, 10_000, 10_000, 100_000))
        })
    });

    c.bench_function("preferential_attachment_30k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(15);
            black_box(models::preferential_attachment(&mut rng, 5_000, 10_000, 3))
        })
    });

    let er = GraphModel::ErdosRenyi {
        left: 10_000,
        right: 10_000,
        edges: 100_000,
    };
    c.bench_function("streaming_erdos_renyi_100k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(16);
            black_box(er.generate(&mut rng))
        })
    });
    c.bench_function("incremental_erdos_renyi_100k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(16);
            black_box(er.generate_incremental(&mut rng))
        })
    });

    let planted = GraphModel::PlantedBlocks {
        left: 10_000,
        right: 10_000,
        blocks: 32,
        per_left: 10,
        intra_prob: 0.8,
    };
    c.bench_function("streaming_planted_blocks_100k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(17);
            black_box(planted.generate(&mut rng))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_datagen
);
criterion_main!(benches);
