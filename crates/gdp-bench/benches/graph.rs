//! Benchmarks of the graph substrate: CSR construction, degree scans,
//! partition edge accounting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_datagen::models::erdos_renyi;
use gdp_graph::{GraphStats, PairCounts, Side, SidePartition};

fn bench_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = erdos_renyi(&mut rng, 20_000, 20_000, 200_000);

    c.bench_function("graph_build_200k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(erdos_renyi(&mut rng, 20_000, 20_000, 200_000))
        })
    });

    c.bench_function("graph_stats_200k_edges", |b| {
        b.iter(|| black_box(GraphStats::compute(&graph)))
    });

    let left = SidePartition::new(
        Side::Left,
        (0..20_000u32).map(|i| i % 64).collect(),
        64,
    )
    .unwrap();
    let right = SidePartition::new(
        Side::Right,
        (0..20_000u32).map(|i| i % 64).collect(),
        64,
    )
    .unwrap();

    c.bench_function("incident_edge_counts_64_blocks", |b| {
        b.iter(|| black_box(left.incident_edge_counts(&graph)))
    });

    c.bench_function("pair_counts_64x64", |b| {
        b.iter(|| black_box(PairCounts::compute(&graph, &left, &right)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_graph
);
criterion_main!(benches);
