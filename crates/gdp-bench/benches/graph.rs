//! Benchmarks of the graph substrate: CSR construction, degree scans,
//! partition edge accounting, and the hierarchy-statistics engine
//! (per-level rescan vs one-sweep + rollup).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::{HierarchyStats, SpecializationConfig, Specializer};
use gdp_datagen::models::erdos_renyi;
use gdp_graph::{GraphStats, PairCounts, Side, SidePartition};

fn bench_graph(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = erdos_renyi(&mut rng, 20_000, 20_000, 200_000);

    c.bench_function("graph_build_200k_edges", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(erdos_renyi(&mut rng, 20_000, 20_000, 200_000))
        })
    });

    c.bench_function("graph_stats_200k_edges", |b| {
        b.iter(|| black_box(GraphStats::compute(&graph)))
    });

    let left = SidePartition::new(
        Side::Left,
        (0..20_000u32).map(|i| i % 64).collect(),
        64,
    )
    .unwrap();
    let right = SidePartition::new(
        Side::Right,
        (0..20_000u32).map(|i| i % 64).collect(),
        64,
    )
    .unwrap();

    c.bench_function("incident_edge_counts_64_blocks", |b| {
        b.iter(|| black_box(left.incident_edge_counts(&graph)))
    });

    c.bench_function("pair_counts_64x64", |b| {
        b.iter(|| black_box(PairCounts::compute(&graph, &left, &right)))
    });

    // Baseline: the original per-edge HashMap scan the CSR sweep
    // replaced (kept for equivalence checks).
    c.bench_function("pair_counts_64x64_naive", |b| {
        b.iter(|| black_box(PairCounts::compute_naive(&graph, &left, &right)))
    });

    // The PR-2 tentpole measurement: all hierarchy levels' pair counts
    // via one edge sweep + refinement rollups, vs one edge scan per
    // level.
    let hierarchy = Specializer::new(SpecializationConfig::median(6).unwrap())
        .specialize(&graph, &mut StdRng::seed_from_u64(5))
        .unwrap();
    c.bench_function("hierarchy_stats_one_sweep_rollup", |b| {
        b.iter(|| black_box(HierarchyStats::compute(&graph, &hierarchy).unwrap()))
    });
    c.bench_function("hierarchy_stats_per_level_rescan", |b| {
        b.iter(|| {
            for level in hierarchy.levels() {
                black_box(PairCounts::compute(&graph, level.left(), level.right()));
            }
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_graph
);
criterion_main!(benches);
