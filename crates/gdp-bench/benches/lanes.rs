//! Lane-vs-scalar pairs for the three ISSUE-9 hot kernels.
//!
//! Each pair benches the chunked lane path next to the pinned scalar
//! fallback it must stay bit-identical to (the equivalence itself is
//! enforced by the property suites; here we only watch the ratio):
//!
//! * `subset_gather_*` — the `IndexedRelease::estimate` premass gather
//!   over a >65 536-node side, where the scalar fallback still pays the
//!   per-call `to_vec` + `sort_unstable` duplicate check,
//! * `pair_count_fold_*` — the `PairCounts` per-row fold emission
//!   (bulk column copy + chunked count gather vs per-cell pushes),
//! * `laplace_slice_*` — batched Laplace noise addition (pre-drawn
//!   uniform blocks + chunked inverse-CDF transform vs a per-element
//!   draw loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gdp_mechanisms::sampling;
use gdp_serve::kernels::{gather_subset, gather_subset_scalar};

fn bench_subset_gather(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    // Just past the boundary where the scalar fallback switches from
    // the stack bitmap to the alloc + sort duplicate check.
    let n = 70_000u32;
    let groups = 64u32;
    let group_of: Vec<u32> = (0..n).map(|_| rng.gen_range(0..groups)).collect();
    let premass: Vec<f64> = (0..groups).map(|_| rng.gen_range(-1e6..1e6)).collect();
    let mut nodes: Vec<u32> = Vec::with_capacity(512);
    while nodes.len() < 512 {
        let node = rng.gen_range(0..n);
        if !nodes.contains(&node) {
            nodes.push(node);
        }
    }

    c.bench_function("subset_gather_lane_512_of_70k", |b| {
        b.iter(|| gather_subset(black_box(&group_of), black_box(&premass), black_box(&nodes)))
    });
    c.bench_function("subset_gather_scalar_512_of_70k", |b| {
        b.iter(|| {
            gather_subset_scalar(black_box(&group_of), black_box(&premass), black_box(&nodes))
        })
    });
}

fn bench_pair_count_fold(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let rows = 2_000usize;
    let entries = 100_000usize;
    let right_blocks = 2_000u32;
    let mut offsets = vec![0usize; rows + 1];
    for _ in 0..entries {
        offsets[rng.gen_range(0..rows as u32) as usize + 1] += 1;
    }
    for i in 0..rows {
        offsets[i + 1] += offsets[i];
    }
    let bucket: Vec<u32> = (0..entries)
        .map(|_| rng.gen_range(0..right_blocks))
        .collect();

    c.bench_function("pair_count_fold_lane_100k", |b| {
        b.iter(|| {
            gdp_graph::fold_rows_for_bench(
                black_box(&bucket),
                black_box(&offsets),
                black_box(right_blocks),
            )
        })
    });
    c.bench_function("pair_count_fold_scalar_100k", |b| {
        b.iter(|| {
            gdp_graph::fold_rows_scalar_for_bench(
                black_box(&bucket),
                black_box(&offsets),
                black_box(right_blocks),
            )
        })
    });
}

fn bench_laplace_slice(c: &mut Criterion) {
    let scale = 4.0f64;
    let mut values = vec![100.0f64; 100_000];

    c.bench_function("laplace_slice_lane_100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            sampling::laplace_add_into(&mut rng, black_box(scale), black_box(&mut values));
        })
    });
    c.bench_function("laplace_slice_scalar_100k", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            for v in values.iter_mut() {
                *v += sampling::laplace(&mut rng, black_box(scale));
            }
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_subset_gather, bench_pair_count_fold, bench_laplace_slice
);
criterion_main!(benches);
