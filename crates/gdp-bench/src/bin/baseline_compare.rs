//! Experiment B1 — why calibrate to group sensitivity directly?
//! Compares three routes to a "private" association count at each level:
//!
//! * individual edge-DP (classical DP; **no** group guarantee),
//! * the paper's approach — Gaussian calibrated to group sensitivity,
//! * naive group DP via the k-fold group-privacy property of
//!   individual DP (same guarantee, strictly more noise).
//!
//! ```text
//! cargo run -p gdp-bench --release --bin baseline_compare [-- --trials 25]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_bench::args::CommonArgs;
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, ExperimentContext};
use gdp_core::{
    individual_edge_dp_count, naive_group_composition_count, relative_error, DisclosureConfig,
    MultiLevelDiscloser, SplitStrategy,
};
use gdp_mechanisms::{Delta, Epsilon};

fn main() {
    let args = CommonArgs::parse();
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), 6, SplitStrategy::Exponential, args.seed);
    let eps = 0.5f64;
    let delta = 1e-6f64;
    let true_total = graph.edge_count() as f64;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xB1);

    let discloser = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(eps, delta).expect("valid parameters"),
    );

    let mut table = Table::new([
        "level",
        "group_sens",
        "rer_edge_dp",
        "rer_calibrated",
        "rer_naive_composition",
    ]);
    for level_idx in [1usize, 2, 3, 4, 5] {
        eprintln!("baseline_compare: level {level_idx}");
        let level = hierarchy.level(level_idx).expect("level exists");
        let sens = level.max_incident_edges(&graph);
        let mut rer = [0f64; 3];
        for _ in 0..args.trials {
            let edge = individual_edge_dp_count(&graph, Epsilon::new(eps).unwrap(), &mut rng)
                .expect("baseline runs");
            rer[0] += relative_error(edge.noisy_total, true_total);

            let calibrated = discloser
                .disclose_level(&graph, level, level_idx, &mut rng)
                .expect("calibrated release runs");
            rer[1] += relative_error(
                calibrated.total_associations().expect("count released"),
                true_total,
            );

            let naive = naive_group_composition_count(
                &graph,
                level,
                Epsilon::new(eps).unwrap(),
                Delta::new(delta).unwrap(),
                &mut rng,
            )
            .expect("naive baseline runs");
            rer[2] += relative_error(naive.noisy_total, true_total);
        }
        let t = args.trials as f64;
        table.push_row([
            level_idx.to_string(),
            sens.to_string(),
            fmt_f64(rer[0] / t),
            fmt_f64(rer[1] / t),
            fmt_f64(rer[2] / t),
        ]);
    }

    println!("B1 — baselines (eps = {eps}, delta = {delta:e})");
    println!("edge-DP is accurate but offers NO group guarantee;");
    println!("calibrated vs naive both guarantee eps_g-group-DP at the level.");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/baseline_compare.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/baseline_compare.csv: {e}");
    }
}
