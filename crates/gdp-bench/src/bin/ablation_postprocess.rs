//! Ablation A5 — consumer-side post-processing (an extension beyond the
//! paper). Every level's noisy total estimates the same quantity;
//! inverse-variance fusion of the levels a reader may access improves
//! accuracy at zero privacy cost. This experiment quantifies the gain
//! per privilege rank.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin ablation_postprocess [-- --trials 25]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_bench::args::CommonArgs;
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, ExperimentContext};
use gdp_core::postprocess::fuse_total_estimates;
use gdp_core::{relative_error, DisclosureConfig, MultiLevelDiscloser, SplitStrategy};

fn main() {
    let args = CommonArgs::parse();
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), 6, SplitStrategy::Exponential, args.seed);
    let truth = graph.edge_count() as f64;
    let discloser = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6).expect("valid parameters"),
    );
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xA5);
    let top = hierarchy.level_count() - 1;

    let mut table = Table::new(["privilege", "levels_seen", "rer_best_single", "rer_fused"]);
    // privilege p reads levels p..=top.
    for privilege in [0usize, 2, 4, top] {
        eprintln!("ablation_postprocess: privilege {privilege}");
        let accessible: Vec<usize> = (privilege..=top).collect();
        let mut rer_single = 0f64;
        let mut rer_fused = 0f64;
        for _ in 0..args.trials {
            let release = discloser
                .disclose(&graph, &hierarchy, &mut rng)
                .expect("disclosure succeeds");
            // Best single level a reader would use: the finest accessible.
            let single = release
                .level(privilege)
                .expect("level released")
                .total_associations()
                .expect("count released");
            rer_single += relative_error(single, truth);
            let (fused, _) =
                fuse_total_estimates(&release, &accessible).expect("fusion succeeds");
            rer_fused += relative_error(fused, truth);
        }
        let t = args.trials as f64;
        table.push_row([
            privilege.to_string(),
            accessible.len().to_string(),
            fmt_f64(rer_single / t),
            fmt_f64(rer_fused / t),
        ]);
    }

    println!("Ablation A5 — inverse-variance fusion of accessible levels (eps_g = 0.5)");
    println!("post-processing only: no additional privacy cost");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/ablation_postprocess.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/ablation_postprocess.csv: {e}");
    }
}
