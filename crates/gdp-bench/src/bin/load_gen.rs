//! `load_gen` — HTTP load generator for the `gdp serve` frontend.
//!
//! Drives a running server with a deterministic Zipf-skewed query mix
//! over `(level, group, variant)` — a few hot keys dominate, the tail
//! is long — which is what exercises the memo cache the way real
//! consumers do. The query universe is discovered from
//! `GET /v1/releases`, so the generator needs nothing out-of-band
//! beyond the address. `503` backpressure responses are retried with
//! bounded exponential backoff (honoring `Retry-After`); anything else
//! non-200 fails the run.
//!
//! Reports client-observed p50/p99 latency, sustained QPS, the 503
//! retry count, and the server-side memo-cache hit rate (from
//! `GET /stats`), and checks that every query variant round-tripped.
//! With `--merge-into BENCH_pipeline.json` the report becomes the
//! `serving_frontend` section of the tracked bench file;
//! `--assert-p99-under MS` / `--assert-qps-over QPS` turn floors into
//! exit codes for CI.
//!
//! ```text
//! load_gen --addr HOST:PORT [--requests N] [--concurrency N] [--seed N]
//!          [--zipf-exponent S] [--merge-into FILE]
//!          [--assert-p99-under MS] [--assert-qps-over QPS] [--shutdown]
//! ```

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use gdp_graph::Side;
use gdp_net::{client, AnswerRequest, ReleasesResponse, StatsSnapshot, VariantCounts};
use gdp_serve::{Query, SubsetQuery};

const TIMEOUT: Duration = Duration::from_secs(10);

struct Args {
    addr: String,
    requests: u64,
    concurrency: usize,
    seed: u64,
    zipf_exponent: f64,
    merge_into: Option<String>,
    assert_p99_under: Option<f64>,
    assert_qps_over: Option<f64>,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        requests: 2_000,
        concurrency: 4,
        seed: 42,
        zipf_exponent: 1.1,
        merge_into: None,
        assert_p99_under: None,
        assert_qps_over: None,
        shutdown: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => out.addr = expect_str(iter.next(), "--addr"),
            "--requests" => out.requests = expect_num(iter.next(), "--requests"),
            "--concurrency" => out.concurrency = expect_num(iter.next(), "--concurrency"),
            "--seed" => out.seed = expect_num(iter.next(), "--seed"),
            "--zipf-exponent" => out.zipf_exponent = expect_num(iter.next(), "--zipf-exponent"),
            "--merge-into" => out.merge_into = Some(expect_str(iter.next(), "--merge-into")),
            "--assert-p99-under" => {
                out.assert_p99_under = Some(expect_num(iter.next(), "--assert-p99-under"));
            }
            "--assert-qps-over" => {
                out.assert_qps_over = Some(expect_num(iter.next(), "--assert-qps-over"));
            }
            "--shutdown" => out.shutdown = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --addr HOST:PORT [--requests N] [--concurrency N] [--seed N] \
                     [--zipf-exponent S] [--merge-into FILE] [--assert-p99-under MS] \
                     [--assert-qps-over QPS] [--shutdown]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    if out.addr.is_empty() {
        eprintln!("--addr HOST:PORT is required");
        std::process::exit(2);
    }
    out
}

fn expect_str(value: Option<String>, flag: &str) -> String {
    match value {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs an argument");
            std::process::exit(2);
        }
    }
}

fn expect_num<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a numeric argument");
            std::process::exit(2);
        }
    }
}

/// One addressable query in the universe.
#[derive(Clone)]
struct WorkItem {
    dataset: String,
    epoch: u64,
    level: usize,
    query: Query,
}

/// Enumerates every query the released artifacts can answer: side
/// totals, the left degree histogram, up to eight group masses per side
/// and level, and a few deterministic node subsets.
fn build_universe(releases: &ReleasesResponse, rng: &mut StdRng) -> Vec<WorkItem> {
    let mut universe = Vec::new();
    for info in &releases.releases {
        for level in 0..info.levels {
            let mut push = |query: Query| {
                universe.push(WorkItem {
                    dataset: info.dataset.clone(),
                    epoch: info.epoch,
                    level,
                    query,
                });
            };
            push(Query::SideTotal { side: Side::Left });
            push(Query::SideTotal { side: Side::Right });
            // Only the left degree histogram is part of the release.
            push(Query::DegreeHistogram { side: Side::Left });
            for group in 0..info.left_groups[level].min(8) {
                push(Query::GroupMass {
                    side: Side::Left,
                    group,
                });
            }
            for group in 0..info.right_groups[level].min(8) {
                push(Query::GroupMass {
                    side: Side::Right,
                    group,
                });
            }
            for size in [4u32, 16] {
                // Subsets must be duplicate-free or the service answers
                // 400; sample without replacement.
                let mut nodes = std::collections::BTreeSet::new();
                while (nodes.len() as u32) < size.min(info.left_nodes) {
                    nodes.insert(rng.gen_range(0..info.left_nodes));
                }
                push(Query::SubsetCount(SubsetQuery {
                    side: Side::Left,
                    nodes: nodes.into_iter().collect(),
                }));
            }
        }
    }
    // A deterministic shuffle decides which keys end up hot — the Zipf
    // ranks below are over this order.
    for i in (1..universe.len()).rev() {
        universe.swap(i, rng.gen_range(0..=i));
    }
    universe
}

/// Cumulative Zipf weights over ranks `0..n`: `w_k ∝ 1/(k+1)^s`.
fn zipf_cumulative(n: usize, exponent: f64) -> Vec<f64> {
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0;
    for k in 0..n {
        total += 1.0 / ((k + 1) as f64).powf(exponent);
        cumulative.push(total);
    }
    cumulative
}

/// Samples a rank from the cumulative weight table.
fn sample_rank(cumulative: &[f64], rng: &mut StdRng) -> usize {
    let total = cumulative.last().copied().unwrap_or(1.0);
    let u: f64 = rng.gen::<f64>() * total;
    cumulative.partition_point(|&c| c < u).min(cumulative.len() - 1)
}

/// Per-worker tally, merged after the run.
#[derive(Default)]
struct WorkerTally {
    latencies_us: Vec<u64>,
    retries_503: u64,
    failures: Vec<String>,
    variants: [u64; 4],
}

fn variant_slot(query: &Query) -> usize {
    match query {
        Query::SubsetCount(_) => 0,
        Query::GroupMass { .. } => 1,
        Query::DegreeHistogram { .. } => 2,
        Query::SideTotal { .. } => 3,
    }
}

/// Sends one request over a keep-alive connection, reconnecting once if
/// the server closed it (keep-alive cap, drain race), and riding out
/// 503 backpressure with bounded exponential backoff.
fn send_one(
    conn: &mut Option<client::ClientConn>,
    addr: SocketAddr,
    body: &str,
    seed: u64,
) -> Result<(u16, u32), String> {
    for attempt in 0..2 {
        if conn.is_none() {
            *conn = Some(
                client::ClientConn::connect(addr, TIMEOUT)
                    .map_err(|e| format!("connect: {e}"))?,
            );
        }
        let result = client::with_backoff(
            || {
                let live = conn.as_mut().ok_or(gdp_net::HttpError::Closed)?;
                live.send("POST", "/v1/answer", Some(body.as_bytes()))
            },
            8,
            Duration::from_millis(20),
            seed,
        );
        match result {
            Ok((response, retries)) => return Ok((response.status, retries)),
            Err(_) if attempt == 0 => *conn = None,
            Err(e) => return Err(format!("request failed after reconnect: {e:?}")),
        }
    }
    Err("unreachable: reconnect loop exhausted".to_string())
}

/// The `serving_frontend` section written into `BENCH_pipeline.json`.
#[derive(Debug, Serialize)]
struct ServingFrontendBench {
    requests: u64,
    concurrency: usize,
    seed: u64,
    zipf_exponent: f64,
    distinct_keys: usize,
    serve_p50_ms: f64,
    serve_p99_ms: f64,
    serve_qps: f64,
    retries_503: u64,
    cache_hit_rate: f64,
    served_per_variant: VariantCounts,
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1_000.0
}

fn fetch_stats(addr: SocketAddr) -> Result<StatsSnapshot, String> {
    let response =
        client::get(addr, "/stats", TIMEOUT).map_err(|e| format!("GET /stats: {e:?}"))?;
    if response.status != 200 {
        return Err(format!("GET /stats answered {}", response.status));
    }
    serde_json::from_str(
        &String::from_utf8(response.body).map_err(|e| format!("/stats body: {e}"))?,
    )
    .map_err(|e| format!("/stats parse: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args();
    let addr: SocketAddr = args
        .addr
        .parse()
        .map_err(|e| format!("--addr {}: {e}", args.addr))?;

    // The server must be healthy before we aim load at it.
    let health = client::get(addr, "/health", TIMEOUT).map_err(|e| format!("GET /health: {e:?}"))?;
    if health.status != 200 {
        return Err(format!("GET /health answered {}", health.status));
    }

    let response = client::get(addr, "/v1/releases", TIMEOUT)
        .map_err(|e| format!("GET /v1/releases: {e:?}"))?;
    let releases: ReleasesResponse = serde_json::from_str(
        &String::from_utf8(response.body).map_err(|e| format!("releases body: {e}"))?,
    )
    .map_err(|e| format!("releases parse: {e}"))?;
    if releases.releases.is_empty() {
        return Err("the server holds no releases".to_string());
    }

    let mut rng = StdRng::seed_from_u64(args.seed);
    let universe = build_universe(&releases, &mut rng);
    let cumulative = zipf_cumulative(universe.len(), args.zipf_exponent);
    eprintln!(
        "driving {} requests × {} workers over {} distinct keys (zipf s={}, seed {})",
        args.requests, args.concurrency, universe.len(), args.zipf_exponent, args.seed
    );

    let before = fetch_stats(addr)?;
    let started = Instant::now();
    let concurrency = args.concurrency.max(1);
    let tallies: Vec<Mutex<WorkerTally>> =
        (0..concurrency).map(|_| Mutex::new(WorkerTally::default())).collect();
    std::thread::scope(|scope| {
        for (worker, tally) in tallies.iter().enumerate() {
            let universe = &universe;
            let cumulative = &cumulative;
            let requests = args.requests / concurrency as u64
                + u64::from((worker as u64) < args.requests % concurrency as u64);
            let seed = args.seed.wrapping_add(worker as u64).wrapping_mul(0x9e37_79b9);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut conn = None;
                let mut local = WorkerTally::default();
                for _ in 0..requests {
                    let item = &universe[sample_rank(cumulative, &mut rng)];
                    let body = match serde_json::to_string(&AnswerRequest {
                        dataset: item.dataset.clone(),
                        epoch: item.epoch,
                        privilege: 0,
                        level: item.level,
                        query: item.query.clone(),
                    }) {
                        Ok(body) => body,
                        Err(e) => {
                            local.failures.push(format!("serialize: {e}"));
                            continue;
                        }
                    };
                    let sent = Instant::now();
                    match send_one(&mut conn, addr, &body, seed) {
                        Ok((200, retries)) => {
                            local.latencies_us.push(sent.elapsed().as_micros() as u64);
                            local.retries_503 += retries as u64;
                            local.variants[variant_slot(&item.query)] += 1;
                        }
                        Ok((status, _)) => {
                            local.failures.push(format!("{} answered {status}", item.query.name()));
                        }
                        Err(e) => local.failures.push(e),
                    }
                }
                *tally.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = local;
            });
        }
    });
    let wall = started.elapsed();

    let mut latencies_us = Vec::new();
    let mut retries_503 = 0;
    let mut failures = Vec::new();
    let mut variants = [0u64; 4];
    for tally in &tallies {
        let tally = tally.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        latencies_us.extend_from_slice(&tally.latencies_us);
        retries_503 += tally.retries_503;
        failures.extend(tally.failures.iter().cloned());
        for (slot, count) in variants.iter_mut().zip(tally.variants) {
            *slot += count;
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} requests failed; first: {}",
            failures.len(),
            args.requests,
            failures[0]
        ));
    }
    if variants.contains(&0) {
        return Err(format!(
            "not every query variant round-tripped: {variants:?} \
             (subset_count, group_mass, degree_histogram, side_total)"
        ));
    }

    let after = fetch_stats(addr)?;
    let hits = after.cache.hits - before.cache.hits;
    let misses = after.cache.misses - before.cache.misses;
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };

    latencies_us.sort_unstable();
    let section = ServingFrontendBench {
        requests: args.requests,
        concurrency,
        seed: args.seed,
        zipf_exponent: args.zipf_exponent,
        distinct_keys: universe.len(),
        serve_p50_ms: percentile_ms(&latencies_us, 0.50),
        serve_p99_ms: percentile_ms(&latencies_us, 0.99),
        serve_qps: args.requests as f64 / wall.as_secs_f64(),
        retries_503,
        cache_hit_rate: hit_rate,
        served_per_variant: VariantCounts {
            subset_count: variants[0],
            group_mass: variants[1],
            degree_histogram: variants[2],
            side_total: variants[3],
        },
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&section).map_err(|e| e.to_string())?
    );

    if let Some(path) = &args.merge_into {
        merge_section(path, &section)?;
        eprintln!("merged serving_frontend into {path}");
    }

    if args.shutdown {
        let response = client::post_json(addr, "/shutdown", "", TIMEOUT)
            .map_err(|e| format!("POST /shutdown: {e:?}"))?;
        if response.status != 200 {
            return Err(format!("POST /shutdown answered {}", response.status));
        }
        // The drain is done once the listener is gone.
        let deadline = Instant::now() + Duration::from_secs(30);
        while client::get(addr, "/health", Duration::from_millis(250)).is_ok() {
            if Instant::now() > deadline {
                return Err("server kept accepting 30s after /shutdown".to_string());
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        eprintln!("server drained and stopped accepting");
    }

    let mut violations = Vec::new();
    if let Some(ceiling) = args.assert_p99_under {
        if section.serve_p99_ms > ceiling {
            violations.push(format!(
                "p99 {:.3}ms exceeds the {ceiling}ms ceiling",
                section.serve_p99_ms
            ));
        }
    }
    if let Some(floor) = args.assert_qps_over {
        if section.serve_qps < floor {
            violations.push(format!(
                "throughput {:.0} qps is below the {floor} qps floor",
                section.serve_qps
            ));
        }
    }
    if !violations.is_empty() {
        return Err(violations.join("; "));
    }
    Ok(())
}

/// Read-modify-write of the tracked bench file: every other section is
/// preserved byte-for-byte at the value level; `serving_frontend` is
/// replaced (or appended).
fn merge_section(path: &str, section: &ServingFrontendBench) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut document: serde::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
    let serde::Value::Map(entries) = &mut document else {
        return Err(format!("{path}: top level is not a JSON object"));
    };
    let value = section.to_value();
    match entries.iter_mut().find(|(key, _)| key == "serving_frontend") {
        Some((_, slot)) => *slot = value,
        None => entries.push(("serving_frontend".to_string(), value)),
    }
    let rendered = serde_json::to_string_pretty(&document).map_err(|e| e.to_string())?;
    std::fs::write(path, rendered + "\n").map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() {
    if let Err(message) = run() {
        eprintln!("load_gen: {message}");
        std::process::exit(1);
    }
}
