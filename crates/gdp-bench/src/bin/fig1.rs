//! Reproduces **Figure 1** ("Impact of εg"): RER of the noisy
//! association count vs εg, one series per release level `I_{9,i}`,
//! `i ∈ [0,7]`.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin fig1 [-- --paper-scale --trials 25 --seed 42]
//! ```

use gdp_bench::args::CommonArgs;
use gdp_bench::fig1::{run, to_table, Fig1Config};
use gdp_bench::{build_context, thin_hierarchy, ExperimentContext};
use gdp_core::SplitStrategy;

fn main() {
    let args = CommonArgs::parse();
    // Paper setup: "each group in level i is split to 4 subgroups in
    // level i−1" — level i has 4^(9−i) groups per side. We build 16
    // binary split rounds and keep every second level, yielding the
    // 10-level hierarchy (0 = individuals, 9 = whole dataset) whose
    // releases are I9,0..I9,7.
    let rounds = 16;
    eprintln!(
        "fig1: generating {} graph, specializing {rounds} binary rounds...",
        if args.paper_scale { "paper-scale" } else { "laptop-scale" }
    );
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), rounds, SplitStrategy::Exponential, args.seed);
    let hierarchy = thin_hierarchy(&hierarchy, 2);
    eprintln!(
        "fig1: graph m={} edges, hierarchy {} levels; {} trials per cell",
        graph.edge_count(),
        hierarchy.level_count(),
        args.trials
    );

    let config = Fig1Config::paper(hierarchy.level_count(), args.trials, args.seed ^ 0xF16);
    let rows = run(&graph, &hierarchy, &config);
    let table = to_table(&rows, &config.levels, hierarchy.level_count() - 1);

    println!("Figure 1 — Impact of eps_g (mean RER of noisy association count)");
    println!(
        "dataset: {} authors, {} papers, {} associations; delta = {:e}",
        graph.left_count(),
        graph.right_count(),
        graph.edge_count(),
        config.delta
    );
    println!();
    print!("{}", table.render());

    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/fig1.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/fig1.csv: {e}");
    } else {
        eprintln!("wrote results/fig1.csv");
    }
}
