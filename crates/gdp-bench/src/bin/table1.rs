//! Reproduces the paper's inline dataset-statistics table (§III): author
//! count, paper count and association count of the evaluation graph,
//! paper-reported vs. generated (both presets).
//!
//! ```text
//! cargo run -p gdp-bench --release --bin table1 [-- --paper-scale --seed 42]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_bench::args::CommonArgs;
use gdp_bench::table::Table;
use gdp_datagen::{DblpConfig, DblpGenerator};
use gdp_graph::GraphStats;

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new([
        "dataset",
        "authors",
        "papers",
        "associations",
        "max_deg_L",
        "max_deg_R",
    ]);
    table.push_row([
        "DBLP (paper)".to_string(),
        "1295100".to_string(),
        "2281341".to_string(),
        "6384117".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);

    let configs: Vec<(&str, DblpConfig)> = if args.paper_scale {
        vec![
            ("synthetic (paper scale)", DblpConfig::paper_scale()),
            ("synthetic (laptop 1:100)", DblpConfig::laptop_scale()),
        ]
    } else {
        vec![("synthetic (laptop 1:100)", DblpConfig::laptop_scale())]
    };

    for (label, config) in configs {
        eprintln!("table1: generating {label}...");
        let mut rng = StdRng::seed_from_u64(args.seed);
        let graph = DblpGenerator::new(config).generate(&mut rng);
        let stats = GraphStats::compute(&graph);
        table.push_row([
            label.to_string(),
            stats.left_nodes.to_string(),
            stats.right_nodes.to_string(),
            stats.edges.to_string(),
            stats.max_left_degree.to_string(),
            stats.max_right_degree.to_string(),
        ]);
    }

    println!("Table 1 — evaluation dataset statistics (paper vs generated)");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/table1.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/table1.csv: {e}");
    } else {
        eprintln!("wrote results/table1.csv");
    }
}
