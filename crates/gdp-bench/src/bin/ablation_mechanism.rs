//! Ablation A4 — noise mechanism. Compares the paper's classic Gaussian
//! against the analytic Gaussian (tighter σ at equal `(ε, δ)`) and the
//! Laplace mechanism (pure ε-DP, L1-calibrated) across the εg sweep at a
//! mid hierarchy level.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin ablation_mechanism [-- --trials 25]
//! ```

use gdp_bench::args::CommonArgs;
use gdp_bench::fig1::{paper_epsilons, run, Fig1Config};
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, ExperimentContext};
use gdp_core::{NoiseMechanism, SplitStrategy};

fn main() {
    let args = CommonArgs::parse();
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), 6, SplitStrategy::Exponential, args.seed);
    let level = 3usize;

    let mut table = Table::new(["eps_g", "gauss_classic", "gauss_analytic", "laplace"]);
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for mech in [
        NoiseMechanism::GaussianClassic,
        NoiseMechanism::GaussianAnalytic,
        NoiseMechanism::Laplace,
    ] {
        eprintln!("ablation_mechanism: {mech:?}");
        let config = Fig1Config {
            epsilons: paper_epsilons(),
            delta: 1e-6,
            levels: vec![level],
            trials: args.trials,
            mechanism: mech,
            seed: args.seed ^ 0xA4,
        };
        let rows = run(&graph, &hierarchy, &config);
        columns.push(rows.iter().map(|r| r.rer_by_level[0]).collect());
    }
    for (i, eps) in paper_epsilons().iter().enumerate() {
        table.push_row([
            fmt_f64(*eps),
            fmt_f64(columns[0][i]),
            fmt_f64(columns[1][i]),
            fmt_f64(columns[2][i]),
        ]);
    }

    println!("Ablation A4 — mechanism comparison (RER at level {level}, delta = 1e-6)");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/ablation_mechanism.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/ablation_mechanism.csv: {e}");
    }
}
