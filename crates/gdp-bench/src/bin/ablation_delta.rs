//! Ablation A2 — δ. The paper never states the Gaussian δ; this
//! experiment sweeps δ over five decades and shows the RER ladder only
//! shifts by the √ln(1/δ) factor — the Figure-1 *shape* is δ-insensitive,
//! which is why the reproduction fixes δ = 1e-6.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin ablation_delta [-- --trials 25]
//! ```

use gdp_bench::args::CommonArgs;
use gdp_bench::fig1::{run, Fig1Config};
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, ExperimentContext};
use gdp_core::{NoiseMechanism, SplitStrategy};

fn main() {
    let args = CommonArgs::parse();
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), 6, SplitStrategy::Exponential, args.seed);

    let mut table = Table::new(["delta", "rer_L1", "rer_L3", "rer_L5"]);
    for delta in [1e-8, 1e-7, 1e-6, 1e-5, 1e-4] {
        eprintln!("ablation_delta: delta = {delta:e}");
        let config = Fig1Config {
            epsilons: vec![0.5],
            delta,
            levels: vec![1, 3, 5],
            trials: args.trials,
            mechanism: NoiseMechanism::GaussianClassic,
            seed: args.seed ^ 0xA2,
        };
        let rows = run(&graph, &hierarchy, &config);
        let rer = &rows[0].rer_by_level;
        table.push_row([
            format!("{delta:e}"),
            fmt_f64(rer[0]),
            fmt_f64(rer[1]),
            fmt_f64(rer[2]),
        ]);
    }

    println!("Ablation A2 — delta sweep (eps_g = 0.5, classic Gaussian)");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/ablation_delta.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/ablation_delta.csv: {e}");
    }
}
