//! Experiment W1 — subset-query answering error (extension beyond the
//! paper). A consumer answers random subset-count queries from the
//! per-group release of each level via [`gdp_core::answering`]; this
//! measures the mean RER as a function of level and subset size,
//! exposing the resolution/noise trade-off the multi-level design
//! creates for downstream analytics.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin workload_error [-- --trials 25]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_bench::args::CommonArgs;
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, ExperimentContext};
use gdp_core::answering::SubsetCountEstimator;
use gdp_core::{relative_error, DisclosureConfig, MultiLevelDiscloser, Query, SplitStrategy};
use gdp_datagen::workload::CountQueryWorkload;

fn main() {
    let args = CommonArgs::parse();
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), 6, SplitStrategy::Exponential, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x31);
    let discloser = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.8, 1e-6)
            .expect("valid parameters")
            .with_queries(vec![Query::PerGroupCounts]),
    );

    let subset_sizes = [50u32, 500, 5_000];
    let levels = [0usize, 2, 4];
    let queries_per_size = 20usize;

    let mut table = Table::new(["subset_size", "level_0", "level_2", "level_4"]);
    for &size in &subset_sizes {
        eprintln!("workload_error: subset size {size}");
        let workload =
            CountQueryWorkload::random_left(&mut rng, &graph, queries_per_size, size);
        let mut level_rer = vec![0f64; levels.len()];
        for _ in 0..args.trials {
            let release = discloser
                .disclose(&graph, &hierarchy, &mut rng)
                .expect("disclosure succeeds");
            for (slot, &level) in levels.iter().enumerate() {
                let estimator = SubsetCountEstimator::new(
                    release.level(level).expect("level exists"),
                    hierarchy.level(level).expect("level exists"),
                )
                .expect("per-group release present");
                for q in workload.queries() {
                    let est = estimator
                        .estimate(q.side, &q.nodes)
                        .expect("nodes in range");
                    level_rer[slot] += relative_error(est, q.true_answer as f64);
                }
            }
        }
        let denom = (args.trials * queries_per_size) as f64;
        table.push_row([
            size.to_string(),
            fmt_f64(level_rer[0] / denom),
            fmt_f64(level_rer[1] / denom),
            fmt_f64(level_rer[2] / denom),
        ]);
    }

    println!("W1 — subset-count answering error from per-group releases (eps_g = 0.8)");
    println!("rows: query subset size; columns: release level answered from");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/workload_error.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/workload_error.csv: {e}");
    }
}
