//! Ablation A3 — fanout interpretation. The paper's "each group in level
//! i is split to 4 subgroups in level i−1" admits two readings: block
//! counts per side double per level (our default: the 4 subgroups are
//! 2 left + 2 right), or quadruple per level. This experiment builds both
//! hierarchies (the latter by thinning a deeper binary hierarchy) plus an
//! 8× variant and compares the per-level sensitivity ladders and RER.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin ablation_fanout [-- --trials 25]
//! ```

use gdp_bench::args::CommonArgs;
use gdp_bench::fig1::{run, Fig1Config};
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, thin_hierarchy, ExperimentContext};
use gdp_core::{NoiseMechanism, SplitStrategy};

fn main() {
    let args = CommonArgs::parse();
    // 12 binary rounds so stride-2 and stride-3 thinnings stay deep.
    let ExperimentContext { graph, hierarchy } =
        build_context(args.dblp_config(), 12, SplitStrategy::Exponential, args.seed);

    let mut table = Table::new([
        "fanout", "levels", "sens_L1", "sens_L2", "sens_L3", "rer_L1", "rer_L2", "rer_L3",
    ]);
    for (label, stride) in [("2_per_side", 1usize), ("4_per_side", 2), ("8_per_side", 3)] {
        let h = thin_hierarchy(&hierarchy, stride);
        let sens = h.sensitivities(&graph);
        eprintln!("ablation_fanout: {label} → {} levels", h.level_count());
        let config = Fig1Config {
            epsilons: vec![0.5],
            delta: 1e-6,
            levels: vec![1, 2, 3],
            trials: args.trials,
            mechanism: NoiseMechanism::GaussianClassic,
            seed: args.seed ^ 0xA3,
        };
        let rows = run(&graph, &h, &config);
        let rer = &rows[0].rer_by_level;
        table.push_row([
            label.to_string(),
            h.level_count().to_string(),
            sens[1].to_string(),
            sens[2].to_string(),
            sens[3].to_string(),
            fmt_f64(rer[0]),
            fmt_f64(rer[1]),
            fmt_f64(rer[2]),
        ]);
    }

    println!("Ablation A3 — fanout interpretation (eps_g = 0.5)");
    println!("sens_Lk / rer_Lk refer to levels of each thinned hierarchy");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/ablation_fanout.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/ablation_fanout.csv: {e}");
    }
}
