//! Ablation A1 — split strategy. The paper only says Phase 1 uses "an
//! Exponential Mechanism"; this experiment quantifies how the private
//! balanced-mass split compares against a non-private median split and a
//! random split, measured by the per-level count-query sensitivity each
//! induces and the resulting RER at εg = 0.5.
//!
//! ```text
//! cargo run -p gdp-bench --release --bin ablation_split [-- --trials 25]
//! ```

use gdp_bench::args::CommonArgs;
use gdp_bench::fig1::{run, Fig1Config};
use gdp_bench::table::{fmt_f64, Table};
use gdp_bench::{build_context, ExperimentContext};
use gdp_core::{NoiseMechanism, SplitStrategy};

fn main() {
    let args = CommonArgs::parse();
    let rounds = 6;
    let mut table = Table::new([
        "strategy", "sens_L1", "sens_L3", "sens_L5", "rer_L1", "rer_L3", "rer_L5",
    ]);

    for (label, strategy) in [
        ("exponential", SplitStrategy::Exponential),
        ("median", SplitStrategy::Median),
        ("random", SplitStrategy::Random),
    ] {
        eprintln!("ablation_split: running {label}...");
        let ExperimentContext { graph, hierarchy } =
            build_context(args.dblp_config(), rounds, strategy, args.seed);
        let sens = hierarchy.sensitivities(&graph);
        let config = Fig1Config {
            epsilons: vec![0.5],
            delta: 1e-6,
            levels: vec![1, 3, 5],
            trials: args.trials,
            mechanism: NoiseMechanism::GaussianClassic,
            seed: args.seed ^ 0xA1,
        };
        let rows = run(&graph, &hierarchy, &config);
        let rer = &rows[0].rer_by_level;
        table.push_row([
            label.to_string(),
            sens[1].to_string(),
            sens[3].to_string(),
            sens[5].to_string(),
            fmt_f64(rer[0]),
            fmt_f64(rer[1]),
            fmt_f64(rer[2]),
        ]);
    }

    println!("Ablation A1 — split strategy (eps_g = 0.5, delta = 1e-6)");
    println!("sens_Lk: count-query group sensitivity at level k; rer_Lk: mean RER");
    println!();
    print!("{}", table.render());
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|_| std::fs::write("results/ablation_split.csv", table.to_csv()))
    {
        eprintln!("warning: could not write results/ablation_split.csv: {e}");
    }
}
