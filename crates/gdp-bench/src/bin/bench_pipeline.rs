//! `bench_pipeline` — end-to-end wall-time tracking for the two-phase
//! disclosure pipeline.
//!
//! Runs the full pipeline (datagen → Phase-1 specialization → Phase-2
//! noise injection → post-processing → consumer-side answering) on
//! synthetic Erdős–Rényi association graphs at n ∈ {10k, 100k, 1M}
//! edges, plus four acceptance measurements: prefix-sum vs naive cut
//! scoring at 100k edges / 64 candidates (ISSUE 1), per-level
//! pair-count rescans vs the one-sweep + rollup `HierarchyStats` engine
//! (ISSUE 2), the incremental-builder datagen baseline vs the parallel
//! streaming engine at 1M edge draws, model by model (ISSUE 3, the
//! `datagen_1m` entries), and — ISSUEs 4/5, the `answer_qps` entries —
//! per-`Query`-variant serving workloads (subset counts, group masses,
//! degree histograms, side totals) each answered by a per-query core
//! rescan (`SubsetCountEstimator` rebuild / `scan_*` baseline) vs the
//! `gdp-serve` indexed path (artifact → `IndexedRelease` →
//! `AnswerService`), asserted bit-identical on every rep, plus a
//! `reader_throughput` entry driving one shared `AnswerService` from
//! four concurrent OS threads over the sharded store, and — ISSUE 8,
//! the `artifact_io_1m` entry — the sealed 1M-edge artifact saved and
//! loaded through real files in both on-disk formats (JSON vs the
//! `.gda` binary container), loads timed through the full
//! integrity-check + `IndexedRelease` path a store scan pays per file.
//! Results are written as `BENCH_pipeline.json` so successive PRs can
//! track the trajectory.
//!
//! `--assert-disclose-100k-under MS` makes the binary exit non-zero when
//! the 100k-edge disclose phase exceeds the given ceiling,
//! `--assert-datagen-1m-under MS` does the same for the streaming
//! Erdős–Rényi `datagen_1m` time, `--assert-answer-qps-over QPS`
//! requires **every variant's** 100k-edge indexed serving path to clear
//! a throughput floor, and `--assert-binary-load-1m-under MS` caps the
//! 1M-edge binary load+index time — the CI smoke step uses all four so
//! a future PR can neither reintroduce per-level edge scans, nor fall
//! back to single-stream sampling, nor regress serving to per-query
//! estimator rebuilds or release rescans, nor quietly turn the binary
//! load path back into JSON-shaped parsing.
//!
//! ISSUE 9 adds the lane-kernel and threading instrumentation:
//! `--threads N` pins the worker-pool width for the whole run (recorded
//! in the report next to the host core count), the `lane_kernels`
//! entries time each chunked lane kernel against its pinned scalar
//! fallback (asserting bitwise-equal results every rep), and the
//! `scaling` section re-times the datagen / disclose / answer phases at
//! 1/2/4/8 pool threads with the outputs pinned bit-identical across
//! thread counts. `--assert-gather-lane-over RATIO` makes the run fail
//! when the lane subset-gather kernel stops beating the scalar path by
//! the given factor, and `--assert-scaling-disclose-2t-over RATIO`
//! requires the 2-thread disclose phase to show real parallel speedup
//! (skipped with a notice on single-core hosts, where no speedup is
//! physically available).
//!
//! ```text
//! bench_pipeline [--out FILE] [--seed N] [--max-edges N] [--reps N]
//!                [--threads N]
//!                [--assert-disclose-100k-under MS]
//!                [--assert-datagen-1m-under MS]
//!                [--assert-answer-qps-over QPS]
//!                [--assert-binary-load-1m-under MS]
//!                [--assert-gather-lane-over RATIO]
//!                [--assert-scaling-disclose-2t-over RATIO]
//!                [--assert-delta-disclose-over RATIO]
//! ```
//!
//! ISSUE 10 adds the `delta_disclose_1m` entry: epoch N+1 produced from
//! a 1M-edge base plus a 1% edge delta, full recompute vs the
//! dirty-row incremental path, releases asserted bit-identical.
//! `--assert-delta-disclose-over RATIO` fails the run when the
//! incremental path stops beating the recompute by the given factor.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use gdp_core::answering::SubsetCountEstimator;
use gdp_core::postprocess::{clamp_non_negative, fuse_total_estimates};
use gdp_core::scoring::{cut_utilities, cut_utilities_naive};
use gdp_core::{
    ArtifactFormat, DisclosureConfig, GroupHierarchy, HierarchyStats, MultiLevelDiscloser,
    MultiLevelRelease, Privilege, Query, ReleaseArtifact, SpecializationConfig,
    Specializer,
};
use gdp_datagen::engine::GraphModel;
use gdp_datagen::models;
use gdp_graph::{PairCounts, Side};
use gdp_serve::{
    AnswerService, IndexedRelease, Query as ServeQuery, ReleaseStore, SubsetQuery,
    TypedAnswer,
};

#[derive(Debug, Serialize)]
struct ScorerComparison {
    edges: u64,
    candidates: usize,
    naive_ms: f64,
    prefix_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct PhaseTimings {
    edges: u64,
    left_nodes: u32,
    right_nodes: u32,
    rounds: u32,
    levels: usize,
    datagen_ms: f64,
    specialize_ms: f64,
    disclose_ms: f64,
    postprocess_ms: f64,
    answering_ms: f64,
    answering_queries: usize,
    total_ms: f64,
}

#[derive(Debug, Serialize)]
struct PairCountsComparison {
    edges: u64,
    levels: usize,
    per_level_rescan_ms: f64,
    one_sweep_rollup_ms: f64,
    speedup: f64,
}

/// The ISSUE-10 acceptance measurement: epoch N+1 disclosed from a
/// 1M-edge epoch-N base plus a 1% edge delta, by full recompute
/// (re-sweep every level's statistics from the updated graph, disclose)
/// vs the incremental path a [`gdp_core::DisclosureSession`] takes in
/// `publish_next` (roll the delta through the cached `HierarchyStats`
/// dirty rows, then disclose from the updated stats). Applying the
/// delta to the adjacency itself is shared epoch ingest — both arms
/// need the same updated graph — so it sits outside both timers. Both
/// arms draw the identical RNG stream, and their releases are asserted
/// bit-identical on every rep — the speedup is pure avoided
/// recomputation, not a different disclosure.
#[derive(Debug, Serialize)]
struct DeltaDiscloseComparison {
    edges: u64,
    delta_inserts: usize,
    delta_deletes: usize,
    levels: usize,
    full_recompute_ms: f64,
    delta_update_ms: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct DatagenComparison {
    model: String,
    edges: u64,
    incremental_ms: f64,
    streaming_ms: f64,
    speedup: f64,
}

/// The ISSUE-8 acceptance measurement: the sealed 1M-edge release
/// artifact saved and loaded in both on-disk formats. Saves go through
/// the crash-safe path (stage, fsync, rename); loads pay the full
/// integrity bill for their format — JSON parse + canonical-digest
/// re-hash vs `.gda` container-digest check + section decode — plus
/// the `IndexedRelease` build, i.e. exactly what a store scan pays per
/// file at startup.
#[derive(Debug, Serialize)]
struct ArtifactIoComparison {
    edges: u64,
    levels: usize,
    json_bytes: u64,
    binary_bytes: u64,
    json_save_ms: f64,
    binary_save_ms: f64,
    json_load_index_ms: f64,
    binary_load_index_ms: f64,
    load_speedup: f64,
}

#[derive(Debug, Serialize)]
struct AnswerQpsComparison {
    query_type: String,
    edges: u64,
    level: usize,
    queries: usize,
    subset_size: usize,
    rebuild_ms: f64,
    indexed_ms: f64,
    speedup: f64,
    indexed_qps: f64,
}

/// Aggregate throughput of N OS threads answering concurrently through
/// one shared `AnswerService` over the sharded store — the reader-side
/// scaling entry (single-reader time over the same total workload is
/// the baseline; on a single-core runner the two are comparable and
/// the entry mainly proves the path is contention-safe).
#[derive(Debug, Serialize)]
struct ReaderThroughput {
    edges: u64,
    readers: usize,
    queries_per_reader: usize,
    single_reader_ms: f64,
    concurrent_ms: f64,
    aggregate_qps: f64,
}

/// One lane-vs-scalar kernel pair (ISSUE 9): the chunked hot-kernel
/// path timed against its pinned scalar fallback on identical inputs,
/// outputs asserted bit-identical on every rep.
#[derive(Debug, Serialize)]
struct LaneKernelComparison {
    kernel: String,
    work_items: u64,
    scalar_ms: f64,
    lane_ms: f64,
    speedup: f64,
}

/// One thread count's row of the multi-thread scaling story: the three
/// rayon-parallel phases re-timed with the pool sized to `threads`,
/// with speedups relative to the single-thread row. Results at every
/// thread count are asserted bit-identical to the single-thread run
/// (determinism is a workspace contract, see `docs/determinism.md`).
#[derive(Debug, Serialize)]
struct ScalingEntry {
    threads: usize,
    datagen_1m_ms: f64,
    disclose_1m_ms: f64,
    answer_100k_ms: f64,
    datagen_speedup: f64,
    disclose_speedup: f64,
    answer_speedup: f64,
}

/// The `scaling` section of the report. `host_cores` is what
/// `std::thread::available_parallelism()` reported — on a single-core
/// host every speedup sits near 1.0 and the section mainly proves
/// bit-stability across pool sizes; multi-core readers (and the CI
/// runner) see the actual scaling.
#[derive(Debug, Serialize)]
struct ScalingReport {
    host_cores: usize,
    entries: Vec<ScalingEntry>,
}

#[derive(Debug, Serialize)]
struct Report {
    generated_by: String,
    seed: u64,
    threads: usize,
    host_cores: usize,
    scorer_100k: ScorerComparison,
    pair_counts_1m: PairCountsComparison,
    delta_disclose_1m: DeltaDiscloseComparison,
    datagen_1m: Vec<DatagenComparison>,
    artifact_io_1m: ArtifactIoComparison,
    answer_qps: Vec<AnswerQpsComparison>,
    /// `None` only when `--max-edges` clips the 100k scale it is
    /// measured at.
    reader_throughput: Option<ReaderThroughput>,
    lane_kernels: Vec<LaneKernelComparison>,
    scaling: ScalingReport,
    phases: Vec<PhaseTimings>,
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("at least one rep"))
}

fn scorer_comparison(seed: u64, reps: usize) -> ScorerComparison {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = models::erdos_renyi(&mut rng, 20_000, 20_000, 100_000);
    let degrees = graph.left_degrees();
    let mut block: Vec<u32> = (0..graph.left_count()).collect();
    block.sort_unstable_by_key(|&n| (degrees[n as usize], n));
    let available = block.len() - 1;
    let candidates: Vec<usize> = (1..=64usize).map(|i| 1 + (i - 1) * available / 64).collect();

    // The naive scorer is O(candidates × members); a handful of reps is
    // plenty. The prefix scorer is microseconds, so rep it harder.
    let (naive_ms, naive_scores) =
        time_best_of(reps, || cut_utilities_naive(&block, &degrees, &candidates));
    let (prefix_once_ms, prefix_scores) = time_best_of(reps * 20, || {
        cut_utilities(&block, &degrees, &candidates)
    });
    assert_eq!(naive_scores, prefix_scores, "scorers must agree bitwise");
    ScorerComparison {
        edges: graph.edge_count(),
        candidates: candidates.len(),
        naive_ms,
        prefix_ms: prefix_once_ms,
        speedup: naive_ms / prefix_once_ms,
    }
}

/// The ISSUE-2 acceptance measurement: every level's pair counts via one
/// edge scan per level (the PR-1 disclosure inner loop) vs one edge
/// sweep + refinement rollups. Equality of the two results is asserted
/// on every rep.
fn pair_counts_comparison(edges: usize, seed: u64, reps: usize) -> PairCountsComparison {
    let side = ((edges as f64).sqrt() * 6.3) as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = models::erdos_renyi(&mut rng, side, side, edges);
    let hierarchy = Specializer::new(
        SpecializationConfig::paper_default(8).expect("rounds > 0"),
    )
    .specialize(&graph, &mut StdRng::seed_from_u64(seed ^ 1))
    .expect("specialize succeeds");

    let (rescan_ms, per_level) = time_best_of(reps, || {
        hierarchy
            .levels()
            .iter()
            .map(|level| PairCounts::compute(&graph, level.left(), level.right()))
            .collect::<Vec<_>>()
    });
    let (rollup_ms, stats) = time_best_of(reps, || {
        HierarchyStats::compute(&graph, &hierarchy).expect("stats compute succeeds")
    });
    for (direct, cached) in per_level.iter().zip(stats.levels()) {
        assert_eq!(direct, cached.pair_counts(), "rollup must be bit-identical");
    }
    PairCountsComparison {
        edges: graph.edge_count(),
        levels: hierarchy.level_count(),
        per_level_rescan_ms: rescan_ms,
        one_sweep_rollup_ms: rollup_ms,
        speedup: rescan_ms / rollup_ms,
    }
}

/// The ISSUE-10 measurement (see [`DeltaDiscloseComparison`]): both
/// arms start from the same epoch-N fixtures (graph, hierarchy, cached
/// stats) and produce the same epoch-N+1 release from a 1% churn delta
/// (half deletes of existing edges, half inserts of absent pairs).
fn delta_disclose_comparison(edges: usize, seed: u64, reps: usize) -> DeltaDiscloseComparison {
    use gdp_graph::{DegreeHistogram, EdgeDelta, LeftId, RightId};
    use std::collections::HashSet;

    let side = ((edges as f64).sqrt() * 6.3) as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = models::erdos_renyi(&mut rng, side, side, edges);
    let hierarchy = Specializer::new(
        SpecializationConfig::paper_default(8).expect("rounds > 0"),
    )
    .specialize(&graph, &mut StdRng::seed_from_u64(seed ^ 1))
    .expect("specialize succeeds");
    // The epoch-N stats a session would be holding when the delta lands.
    let base_stats =
        HierarchyStats::compute(&graph, &hierarchy).expect("stats compute succeeds");
    let discloser = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6)
            .expect("valid budget")
            .with_queries(vec![
                Query::TotalAssociations,
                Query::PerGroupCounts,
                Query::LeftDegreeHistogram { max_degree: 64 },
            ]),
    );

    // 1% churn, half deletes / half inserts. Deletes come off the edge
    // iterator (distinct by construction); inserts are rejection-sampled
    // absent pairs (and absent pairs cannot collide with the deletes,
    // which all exist in the base graph).
    let churn = edges / 100;
    let deletes: Vec<(LeftId, RightId)> = graph.edges().take(churn / 2).collect();
    let mut drng = StdRng::seed_from_u64(seed ^ 4);
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut inserts = Vec::with_capacity(churn - churn / 2);
    while inserts.len() < churn - churn / 2 {
        let (l, r) = (drng.gen_range(0..side), drng.gen_range(0..side));
        if !graph.has_edge(LeftId::new(l), RightId::new(r)) && seen.insert((l, r)) {
            inserts.push((LeftId::new(l), RightId::new(r)));
        }
    }
    let delta = EdgeDelta::new(inserts, deletes);

    // Both arms disclose the *same* epoch-N+1 graph: applying the edge
    // delta to the adjacency is shared epoch ingest (a session does it
    // exactly once, whichever way it then derives statistics), so it
    // runs untimed here and the timers isolate what the two strategies
    // actually disagree on — how the level statistics are produced.
    let g2 = graph.apply_delta(&delta).expect("delta applies");

    // Full-recompute arm: every level's pair counts re-swept from the
    // updated graph, then disclose.
    let (full_recompute_ms, full_release) = time_best_of(reps, || {
        let stats = HierarchyStats::compute(&g2, &hierarchy).expect("stats compute succeeds");
        let hist = DegreeHistogram::from_degrees(&g2.left_degrees());
        discloser
            .disclose_from_stats(&hierarchy, &stats, &hist, &mut StdRng::seed_from_u64(seed ^ 2))
            .expect("disclose succeeds")
    });

    // Incremental arm: roll the delta's aggregated cell changes through
    // the cached stats' dirty rows only, then disclose. The per-rep
    // `clone` stands in for the epoch-N stats the session already holds
    // — it is *not* timed, because a session mutates its cache in
    // place. An extra warmup rep fills the crate's recycled rebuild
    // scratch first, since steady-state epochs (the thing `publish_next`
    // repeats) never pay that first-touch cost.
    let mut delta_update_ms = f64::INFINITY;
    let mut delta_release = None;
    for rep in 0..reps.max(2) + 1 {
        let mut stats = base_stats.clone();
        let t = Instant::now();
        stats.apply_delta(&hierarchy, &delta).expect("stats delta applies");
        let hist = DegreeHistogram::from_degrees(&g2.left_degrees());
        let release = discloser
            .disclose_from_stats(&hierarchy, &stats, &hist, &mut StdRng::seed_from_u64(seed ^ 2))
            .expect("disclose succeeds");
        if rep > 0 {
            delta_update_ms = delta_update_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        delta_release = Some(release);
    }
    let delta_release = delta_release.expect("at least one rep");
    assert_eq!(
        full_release, delta_release,
        "delta-updated disclosure must be bit-identical to full recompute"
    );

    DeltaDiscloseComparison {
        edges: graph.edge_count(),
        delta_inserts: delta.inserts().len(),
        delta_deletes: delta.deletes().len(),
        levels: hierarchy.level_count(),
        full_recompute_ms,
        delta_update_ms,
        speedup: full_recompute_ms / delta_update_ms,
    }
}

/// The 1M-draw scenario models measured by the `datagen_1m` entries.
fn datagen_models(edges: usize) -> Vec<GraphModel> {
    let side = ((edges as f64).sqrt() * 6.3) as u32;
    vec![
        GraphModel::ErdosRenyi {
            left: side,
            right: side,
            edges,
        },
        GraphModel::ZipfAttachment {
            left: side,
            right: (edges / 3) as u32,
            per_right: 3,
            exponent: 1.15,
        },
        GraphModel::PlantedBlocks {
            left: side,
            right: side,
            blocks: 64,
            per_left: (edges / side as usize) as u32,
            intra_prob: 0.8,
        },
    ]
}

/// The ISSUE-3 acceptance measurement: each streaming model vs the
/// incremental-builder replay of the **same** shard streams. Equality of
/// the two graphs is asserted on every model.
fn datagen_comparison(edges: usize, seed: u64, reps: usize) -> Vec<DatagenComparison> {
    datagen_models(edges)
        .into_iter()
        .map(|model| {
            let (incremental_ms, baseline) = time_best_of(reps, || {
                model.generate_incremental(&mut StdRng::seed_from_u64(seed))
            });
            let (streaming_ms, streamed) =
                time_best_of(reps, || model.generate(&mut StdRng::seed_from_u64(seed)));
            assert_eq!(
                streamed,
                baseline,
                "{} streaming path must be bit-identical to the incremental builder",
                model.name()
            );
            DatagenComparison {
                model: model.name().to_string(),
                edges: streamed.edge_count(),
                incremental_ms,
                streaming_ms,
                speedup: incremental_ms / streaming_ms,
            }
        })
        .collect()
}

/// The ISSUE-8 acceptance measurement (see [`ArtifactIoComparison`]):
/// one sealed artifact from the standard 1M-edge pipeline, written and
/// read back through real files in both formats, with the loaded
/// artifacts asserted equal so neither format can drift.
fn artifact_io_comparison(edges: usize, seed: u64, reps: usize) -> ArtifactIoComparison {
    let side = ((edges as f64).sqrt() * 6.3) as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = models::erdos_renyi(&mut rng, side, side, edges);
    let hierarchy = Specializer::new(
        SpecializationConfig::paper_default(8).expect("rounds > 0"),
    )
    .specialize(&graph, &mut StdRng::seed_from_u64(seed ^ 1))
    .expect("specialize succeeds");
    let release = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6)
            .expect("valid budget")
            .with_queries(vec![
                Query::TotalAssociations,
                Query::PerGroupCounts,
                Query::LeftDegreeHistogram { max_degree: 64 },
            ]),
    )
    .disclose(&graph, &hierarchy, &mut StdRng::seed_from_u64(seed ^ 2))
    .expect("disclose succeeds");
    let artifact =
        ReleaseArtifact::seal("bench-io", 1, hierarchy, release).expect("artifact seals");

    let dir = std::env::temp_dir().join(format!("gdp-bench-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let json_path = dir.join("bench-io-e1.json");
    let bin_path = dir.join("bench-io-e1.gda");

    let (json_save_ms, ()) = time_best_of(reps, || {
        artifact
            .save_atomic_as(&json_path, ArtifactFormat::Json)
            .expect("json save")
    });
    let (binary_save_ms, ()) = time_best_of(reps, || {
        artifact
            .save_atomic_as(&bin_path, ArtifactFormat::Binary)
            .expect("binary save")
    });
    let json_bytes = std::fs::metadata(&json_path).expect("json stat").len();
    let binary_bytes = std::fs::metadata(&bin_path).expect("binary stat").len();

    let (json_load_index_ms, from_json) = time_best_of(reps, || {
        IndexedRelease::new(ReleaseArtifact::load(&json_path).expect("json load"))
            .expect("json artifact indexes")
    });
    let (binary_load_index_ms, from_binary) = time_best_of(reps, || {
        IndexedRelease::new(ReleaseArtifact::load(&bin_path).expect("binary load"))
            .expect("binary artifact indexes")
    });
    assert_eq!(
        from_json.artifact(),
        from_binary.artifact(),
        "both formats must load the identical artifact"
    );
    std::fs::remove_dir_all(&dir).ok();

    ArtifactIoComparison {
        edges: graph.edge_count(),
        levels: from_binary.artifact().level_count(),
        json_bytes,
        binary_bytes,
        json_save_ms,
        binary_save_ms,
        json_load_index_ms,
        binary_load_index_ms,
        load_speedup: json_load_index_ms / binary_load_index_ms,
    }
}

/// Random subsets of `size` **distinct** left nodes (the answering
/// paths reject duplicates with a typed error).
fn distinct_subsets(
    rng: &mut StdRng,
    n_left: u32,
    count: usize,
    size: usize,
) -> Vec<Vec<u32>> {
    (0..count)
        .map(|_| {
            let mut nodes = Vec::with_capacity(size);
            while nodes.len() < size {
                let node = rng.gen_range(0..n_left);
                if !nodes.contains(&node) {
                    nodes.push(node);
                }
            }
            nodes
        })
        .collect()
}

/// The ISSUE-4 acceptance measurement: a batch subset-query workload
/// answered by rebuilding a `SubsetCountEstimator` per query (the
/// pre-serving consumer pattern) vs the indexed O(|S|) gather over an
/// `IndexedRelease`. The index is built **once**, outside the timed
/// region — that asymmetry is the architecture being measured: a
/// serving deployment indexes an artifact at registration time and
/// answers every subsequent workload from the prebuilt tables, while
/// the pre-serving pattern pays the per-query rebuild forever. Both
/// the indexed answers and a full `AnswerService` dispatch of the same
/// workload are asserted bit-identical to the estimator baseline.
fn answer_qps_at(
    graph_edges: u64,
    n_left: u32,
    hierarchy: &GroupHierarchy,
    release: &MultiLevelRelease,
    seed: u64,
    reps: usize,
) -> Vec<AnswerQpsComparison> {
    let level = 1;
    let queries_n = 1000;
    let subset_size = 64;
    let mut qrng = StdRng::seed_from_u64(seed ^ 3);
    let subsets = distinct_subsets(&mut qrng, n_left, queries_n, subset_size);
    let queries: Vec<SubsetQuery> = subsets
        .iter()
        .map(|nodes| SubsetQuery {
            side: Side::Left,
            nodes: nodes.clone(),
        })
        .collect();

    let (rebuild_ms, baseline) = time_best_of(reps, || {
        subsets
            .iter()
            .map(|nodes| {
                SubsetCountEstimator::new(
                    release.level(level).expect("level released"),
                    hierarchy.level(level).expect("level exists"),
                )
                .expect("estimator builds")
                .estimate(Side::Left, nodes)
                .expect("estimate succeeds")
            })
            .collect::<Vec<f64>>()
    });

    let artifact = ReleaseArtifact::seal("bench", 1, hierarchy.clone(), release.clone())
        .expect("artifact seals");
    let indexed = IndexedRelease::new(artifact.clone()).expect("artifact indexes");
    let (indexed_ms, served) = time_best_of(reps, || {
        indexed
            .estimate_batch(level, Side::Left, &subsets)
            .expect("batch answers")
    });
    for (a, b) in baseline.iter().zip(&served) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "indexed serving path must be bit-identical to the estimator"
        );
    }
    // And the full service front door (policy check + memo cache) must
    // serve the same bits.
    let store = ReleaseStore::new();
    store
        .insert(IndexedRelease::new(artifact.clone()).expect("artifact indexes"))
        .expect("store accepts");
    let through_service = AnswerService::new(store)
        .answer_batch("bench", 1, Privilege::full(), level, &queries)
        .expect("service answers");
    for (a, b) in baseline.iter().zip(&through_service) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "AnswerService must be bit-identical to the estimator"
        );
    }
    let mut out = vec![AnswerQpsComparison {
        query_type: "subset_count".to_string(),
        edges: graph_edges,
        level,
        queries: queries_n,
        subset_size,
        rebuild_ms,
        indexed_ms,
        speedup: rebuild_ms / indexed_ms,
        indexed_qps: queries_n as f64 / (indexed_ms / 1e3),
    }];
    out.extend(typed_qps_entries(
        graph_edges,
        hierarchy,
        release,
        &indexed,
        level,
        queries_n,
        reps,
    ));
    out
}

/// The per-variant serving measurements for the non-subset `Query`
/// variants: each workload answered by a per-query core rescan
/// (`gdp_core::answering::scan_*`, re-resolving the release's query
/// list every time — the pre-serving pattern) vs the indexed tables,
/// asserted bit-identical on every rep.
fn typed_qps_entries(
    graph_edges: u64,
    hierarchy: &GroupHierarchy,
    release: &MultiLevelRelease,
    indexed: &IndexedRelease,
    level: usize,
    queries_n: usize,
    reps: usize,
) -> Vec<AnswerQpsComparison> {
    use gdp_core::answering::{scan_degree_histogram, scan_group_mass, scan_side_total};

    let rel = release.level(level).expect("level released");
    let lvl = hierarchy.level(level).expect("level exists");
    let left_groups = lvl.left().block_count();

    let workloads: Vec<(&str, Vec<ServeQuery>)> = vec![
        (
            "group_mass",
            (0..queries_n)
                .map(|i| ServeQuery::GroupMass {
                    side: Side::Left,
                    group: (i as u32) % left_groups,
                })
                .collect(),
        ),
        (
            "degree_histogram",
            (0..queries_n)
                .map(|_| ServeQuery::DegreeHistogram { side: Side::Left })
                .collect(),
        ),
        (
            "side_total",
            (0..queries_n)
                .map(|i| ServeQuery::SideTotal {
                    side: if i % 2 == 0 { Side::Left } else { Side::Right },
                })
                .collect(),
        ),
    ];

    workloads
        .into_iter()
        .map(|(name, queries)| {
            let (rebuild_ms, baseline) = time_best_of(reps, || {
                queries
                    .iter()
                    .map(|q| match q {
                        ServeQuery::GroupMass { side, group } => TypedAnswer::Scalar(
                            scan_group_mass(rel, lvl, *side, *group).expect("group in range"),
                        ),
                        ServeQuery::DegreeHistogram { side } => TypedAnswer::Histogram(
                            scan_degree_histogram(rel, *side)
                                .expect("histogram released")
                                .to_vec()
                                .into(),
                        ),
                        ServeQuery::SideTotal { side } => TypedAnswer::Scalar(
                            scan_side_total(rel, lvl, *side).expect("per-group released"),
                        ),
                        ServeQuery::SubsetCount(_) => unreachable!("subset measured above"),
                    })
                    .collect::<Vec<TypedAnswer>>()
            });
            let (indexed_ms, served) = time_best_of(reps, || {
                indexed.answer_batch(level, &queries).expect("batch answers")
            });
            assert_eq!(
                baseline, served,
                "indexed {name} must be bit-identical to the core rescan"
            );
            AnswerQpsComparison {
                query_type: name.to_string(),
                edges: graph_edges,
                level,
                queries: queries_n,
                subset_size: 0,
                rebuild_ms,
                indexed_ms,
                speedup: rebuild_ms / indexed_ms,
                indexed_qps: queries_n as f64 / (indexed_ms / 1e3),
            }
        })
        .collect()
}

/// The multi-threaded reader entry: N OS threads answering distinct
/// subset workloads through one shared `AnswerService` (each reader
/// issues single `answer` calls — the request-at-a-time pattern a
/// network frontend would drive), against the same total workload
/// answered by one reader. Answers are asserted identical between the
/// two runs.
fn reader_throughput_at(
    graph_edges: u64,
    n_left: u32,
    hierarchy: &GroupHierarchy,
    release: &MultiLevelRelease,
    seed: u64,
) -> ReaderThroughput {
    let level = 1;
    let readers = 4;
    let queries_per_reader = 500;
    let workloads: Vec<Vec<SubsetQuery>> = (0..readers)
        .map(|r| {
            let mut qrng = StdRng::seed_from_u64(seed ^ 0x40 ^ r as u64);
            distinct_subsets(&mut qrng, n_left, queries_per_reader, 64)
                .into_iter()
                .map(|nodes| SubsetQuery {
                    side: Side::Left,
                    nodes,
                })
                .collect()
        })
        .collect();
    let artifact = ReleaseArtifact::seal("bench", 1, hierarchy.clone(), release.clone())
        .expect("artifact seals");
    let fresh_service = || {
        let store = ReleaseStore::new();
        store
            .insert(IndexedRelease::new(artifact.clone()).expect("artifact indexes"))
            .expect("store accepts");
        AnswerService::new(store)
    };

    // One reader, all workloads, sequentially (cache-cold service).
    let service = fresh_service();
    let t = Instant::now();
    let single: Vec<Vec<f64>> = workloads
        .iter()
        .map(|workload| {
            workload
                .iter()
                .map(|q| {
                    service
                        .answer("bench", 1, Privilege::full(), level, q)
                        .expect("answers")
                })
                .collect()
        })
        .collect();
    let single_reader_ms = t.elapsed().as_secs_f64() * 1e3;

    // N readers, one workload each, concurrently (fresh cache-cold
    // service again so memoization cannot transfer between the runs).
    let service = fresh_service();
    let t = Instant::now();
    let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|workload| {
                let service = &service;
                scope.spawn(move || {
                    workload
                        .iter()
                        .map(|q| {
                            service
                                .answer("bench", 1, Privilege::full(), level, q)
                                .expect("answers")
                        })
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader joins")).collect()
    });
    let concurrent_ms = t.elapsed().as_secs_f64() * 1e3;
    for (a, b) in single.iter().flatten().zip(concurrent.iter().flatten()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "concurrent readers must serve the single-reader bits"
        );
    }
    let total_queries = (readers * queries_per_reader) as f64;
    ReaderThroughput {
        edges: graph_edges,
        readers,
        queries_per_reader,
        single_reader_ms,
        concurrent_ms,
        aggregate_qps: total_queries / (concurrent_ms / 1e3),
    }
}

fn pipeline_at(
    edges: usize,
    seed: u64,
    reps: usize,
) -> (PhaseTimings, Vec<AnswerQpsComparison>, Option<ReaderThroughput>) {
    // Side sizes scale with the edge count: density stays ~constant.
    let side = ((edges as f64).sqrt() * 6.3) as u32;
    let rounds = 8u32;

    let model = GraphModel::ErdosRenyi {
        left: side,
        right: side,
        edges,
    };
    let (datagen_ms, graph) = time_best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(seed);
        model.generate(&mut rng)
    });

    let spec = Specializer::new(SpecializationConfig::paper_default(rounds).expect("rounds > 0"));
    let (specialize_ms, hierarchy) = time_best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        spec.specialize(&graph, &mut rng).expect("specialize succeeds")
    });

    let discloser = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6)
            .expect("valid budget")
            .with_queries(vec![
                Query::TotalAssociations,
                Query::PerGroupCounts,
                Query::LeftDegreeHistogram { max_degree: 64 },
            ]),
    );
    let (disclose_ms, release) = time_best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        discloser
            .disclose(&graph, &hierarchy, &mut rng)
            .expect("disclose succeeds")
    });

    let all_levels: Vec<usize> = (0..release.levels().len()).collect();
    let (postprocess_ms, _) = time_best_of(reps, || {
        let fused = fuse_total_estimates(&release, &all_levels).expect("fusion succeeds");
        let mut per_group: Vec<f64> = release.levels()[1]
            .query(Query::PerGroupCounts)
            .expect("per-group released")
            .noisy_values
            .clone();
        clamp_non_negative(&mut per_group);
        (fused, per_group.len())
    });

    // Consumer-side: a batch of random subset-count queries at level 1
    // through one long-lived estimator (the phase timing), plus the
    // ISSUE-4 rebuild-vs-indexed comparison over the same workload.
    let level_idx = 1;
    let estimator = SubsetCountEstimator::new(
        release.level(level_idx).expect("level released"),
        hierarchy.level(level_idx).expect("level exists"),
    )
    .expect("estimator builds");
    let mut qrng = StdRng::seed_from_u64(seed ^ 3);
    let n_left = graph.left_count();
    let subsets = distinct_subsets(&mut qrng, n_left, 1000, 64);
    let (answering_ms, answers) = time_best_of(reps, || {
        estimator
            .estimate_batch(Side::Left, &subsets)
            .expect("batch estimation succeeds")
    });
    assert_eq!(answers.len(), subsets.len());

    let qps = answer_qps_at(
        graph.edge_count(),
        n_left,
        &hierarchy,
        &release,
        seed,
        reps,
    );
    // The concurrent-reader entry is measured once, at the 100k scale
    // (like the CI answer-qps floor), so the report carries exactly one.
    let readers = ((90_000..=110_000).contains(&edges))
        .then(|| reader_throughput_at(graph.edge_count(), n_left, &hierarchy, &release, seed));

    let timings = PhaseTimings {
        edges: graph.edge_count(),
        left_nodes: graph.left_count(),
        right_nodes: graph.right_count(),
        rounds,
        levels: hierarchy.level_count(),
        datagen_ms,
        specialize_ms,
        disclose_ms,
        postprocess_ms,
        answering_ms,
        answering_queries: subsets.len(),
        total_ms: datagen_ms + specialize_ms + disclose_ms + postprocess_ms + answering_ms,
    };
    (timings, qps, readers)
}

/// The ISSUE-9 per-kernel measurements: each restructured hot kernel
/// timed against its pinned scalar fallback on identical inputs at the
/// 100k-edge working scale, outputs asserted bit-identical every rep.
fn lane_kernel_comparison(seed: u64, reps: usize) -> Vec<LaneKernelComparison> {
    use gdp_serve::kernels::{gather_subset, gather_subset_scalar};
    let mut rng = StdRng::seed_from_u64(seed ^ 9);
    let mut out = Vec::new();

    // Subset-count gather on a side just past the 65 536-node boundary,
    // where the scalar fallback's duplicate check is the old per-call
    // `to_vec` + `sort_unstable` walk that ISSUE 9 replaced with the
    // reusable lazily-cleared scratch bitmap. 1000 subsets of 512
    // distinct nodes each — large enough that the sort the lane path
    // hoisted out dominates the scalar cost, small enough that the
    // lazy clear stays proportional to the subset.
    let n = 70_000u32;
    let groups = 64u32;
    let group_of: Vec<u32> = (0..n).map(|_| rng.gen_range(0..groups)).collect();
    let premass: Vec<f64> = (0..groups).map(|_| rng.gen_range(-1e6..1e6)).collect();
    let subsets = distinct_subsets(&mut rng, n, 1000, 512);
    type GatherFn = fn(&[u32], &[f64], &[u32]) -> Option<f64>;
    let run = |gather: GatherFn| {
        let mut acc = 0.0f64;
        for nodes in &subsets {
            acc += gather(&group_of, &premass, nodes).expect("clean subset");
        }
        acc
    };
    let (scalar_ms, scalar_acc) = time_best_of(reps * 20, || run(gather_subset_scalar));
    let (lane_ms, lane_acc) = time_best_of(reps * 20, || run(gather_subset));
    assert_eq!(
        lane_acc.to_bits(),
        scalar_acc.to_bits(),
        "lane gather must be bit-identical to the scalar fallback"
    );
    out.push(LaneKernelComparison {
        kernel: "subset_gather".to_string(),
        work_items: (subsets.len() * 512) as u64,
        scalar_ms,
        lane_ms,
        speedup: scalar_ms / lane_ms,
    });

    // Pair-count row fold: a bucketed edge set at the 100k-edge scale
    // (2000 rows, 100k entries) through the chunked vs per-cell
    // emission paths.
    let rows = 2_000usize;
    let entries = 100_000usize;
    let right_blocks = 2_000u32;
    let mut offsets = vec![0usize; rows + 1];
    for _ in 0..entries {
        offsets[rng.gen_range(0..rows as u32) as usize + 1] += 1;
    }
    for i in 0..rows {
        offsets[i + 1] += offsets[i];
    }
    let bucket: Vec<u32> = (0..entries).map(|_| rng.gen_range(0..right_blocks)).collect();
    let (fold_scalar_ms, cells_scalar) = time_best_of(reps * 5, || {
        gdp_graph::fold_rows_scalar_for_bench(&bucket, &offsets, right_blocks)
    });
    let (fold_lane_ms, cells_lane) = time_best_of(reps * 5, || {
        gdp_graph::fold_rows_for_bench(&bucket, &offsets, right_blocks)
    });
    assert_eq!(cells_lane, cells_scalar, "fold paths must agree");
    out.push(LaneKernelComparison {
        kernel: "pair_count_fold".to_string(),
        work_items: entries as u64,
        scalar_ms: fold_scalar_ms,
        lane_ms: fold_lane_ms,
        speedup: fold_scalar_ms / fold_lane_ms,
    });

    // Batched Laplace: the chunked pre-drawn-uniform transform behind
    // `randomize_slice` vs the per-element draw loop it replaced (both
    // consume the identical RNG stream — asserted bitwise).
    let len = 100_000usize;
    let scale = 4.0;
    let base: Vec<f64> = (0..len).map(|i| i as f64).collect();
    let (lap_scalar_ms, scalar_vals) = time_best_of(reps * 5, || {
        let mut vals = base.clone();
        let mut r = StdRng::seed_from_u64(seed ^ 10);
        for v in &mut vals {
            *v += gdp_mechanisms::sampling::laplace(&mut r, scale);
        }
        vals
    });
    let (lap_lane_ms, lane_vals) = time_best_of(reps * 5, || {
        let mut vals = base.clone();
        let mut r = StdRng::seed_from_u64(seed ^ 10);
        gdp_mechanisms::sampling::laplace_add_into(&mut r, scale, &mut vals);
        vals
    });
    for (a, b) in scalar_vals.iter().zip(&lane_vals) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "batched Laplace must be bit-identical to the draw loop"
        );
    }
    out.push(LaneKernelComparison {
        kernel: "laplace_randomize_slice".to_string(),
        work_items: len as u64,
        scalar_ms: lap_scalar_ms,
        lane_ms: lap_lane_ms,
        speedup: lap_scalar_ms / lap_lane_ms,
    });

    out
}

/// The ISSUE-9 multi-thread scaling sweep: the three rayon-parallel
/// phases (streaming datagen at 1M draws, disclosure at 1M edges,
/// batch answering at the 100k scale) re-timed at 1/2/4/8 pool
/// threads, outputs asserted bit-identical to the single-thread run.
/// Restores the entering `RAYON_NUM_THREADS` before returning.
fn scaling_report(seed: u64, reps: usize) -> ScalingReport {
    let entering = std::env::var("RAYON_NUM_THREADS").ok();

    // Shared fixtures, built once outside the timed loops.
    let edges_1m = 1_000_000usize;
    let side_1m = ((edges_1m as f64).sqrt() * 6.3) as u32;
    let model_1m = GraphModel::ErdosRenyi {
        left: side_1m,
        right: side_1m,
        edges: edges_1m,
    };
    let graph_1m = model_1m.generate(&mut StdRng::seed_from_u64(seed));
    let hierarchy_1m = Specializer::new(
        SpecializationConfig::paper_default(8).expect("rounds > 0"),
    )
    .specialize(&graph_1m, &mut StdRng::seed_from_u64(seed ^ 1))
    .expect("specialize succeeds");
    let discloser = MultiLevelDiscloser::new(
        DisclosureConfig::count_only(0.5, 1e-6)
            .expect("valid budget")
            .with_queries(vec![Query::TotalAssociations, Query::PerGroupCounts]),
    );

    let edges_100k = 100_000usize;
    let side_100k = ((edges_100k as f64).sqrt() * 6.3) as u32;
    let graph_100k = GraphModel::ErdosRenyi {
        left: side_100k,
        right: side_100k,
        edges: edges_100k,
    }
    .generate(&mut StdRng::seed_from_u64(seed));
    let hierarchy_100k = Specializer::new(
        SpecializationConfig::paper_default(8).expect("rounds > 0"),
    )
    .specialize(&graph_100k, &mut StdRng::seed_from_u64(seed ^ 1))
    .expect("specialize succeeds");
    let release_100k = discloser
        .disclose(&graph_100k, &hierarchy_100k, &mut StdRng::seed_from_u64(seed ^ 2))
        .expect("disclose succeeds");
    let artifact = ReleaseArtifact::seal("bench-scaling", 1, hierarchy_100k, release_100k)
        .expect("artifact seals");
    let indexed = IndexedRelease::new(artifact).expect("artifact indexes");
    let subsets = distinct_subsets(
        &mut StdRng::seed_from_u64(seed ^ 3),
        graph_100k.left_count(),
        1000,
        64,
    );

    let mut entries: Vec<ScalingEntry> = Vec::new();
    let mut baseline: Option<(f64, f64, f64)> = None;
    let mut pinned: Option<(gdp_graph::BipartiteGraph, gdp_core::MultiLevelRelease, Vec<f64>)> =
        None;
    for threads in [1usize, 2, 4, 8] {
        // The vendored pool sizes itself from this env var on every
        // parallel call, so re-pointing it re-sizes the phases below.
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());

        let (datagen_ms, graph) = time_best_of(reps, || {
            model_1m.generate(&mut StdRng::seed_from_u64(seed))
        });
        let (disclose_ms, release) = time_best_of(reps, || {
            discloser
                .disclose(&graph_1m, &hierarchy_1m, &mut StdRng::seed_from_u64(seed ^ 2))
                .expect("disclose succeeds")
        });
        let (answer_ms, answers) = time_best_of(reps, || {
            indexed
                .estimate_batch(1, Side::Left, &subsets)
                .expect("batch answers")
        });

        match &pinned {
            None => pinned = Some((graph, release, answers)),
            Some((g1, r1, a1)) => {
                assert_eq!(&graph, g1, "datagen must be bit-stable across thread counts");
                assert_eq!(&release, r1, "disclosure must be bit-stable across thread counts");
                for (a, b) in a1.iter().zip(&answers) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "answering must be bit-stable across thread counts"
                    );
                }
            }
        }

        let (d1, x1, a1) = *baseline.get_or_insert((datagen_ms, disclose_ms, answer_ms));
        entries.push(ScalingEntry {
            threads,
            datagen_1m_ms: datagen_ms,
            disclose_1m_ms: disclose_ms,
            answer_100k_ms: answer_ms,
            datagen_speedup: d1 / datagen_ms,
            disclose_speedup: x1 / disclose_ms,
            answer_speedup: a1 / answer_ms,
        });
    }

    match entering {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    ScalingReport {
        host_cores: host_cores(),
        entries,
    }
}

fn main() {
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut seed = 42u64;
    let mut max_edges = 1_000_000usize;
    let mut reps = 3usize;
    let mut threads: Option<usize> = None;
    let mut disclose_100k_ceiling_ms: Option<f64> = None;
    let mut datagen_1m_ceiling_ms: Option<f64> = None;
    let mut answer_qps_floor: Option<f64> = None;
    let mut binary_load_1m_ceiling_ms: Option<f64> = None;
    let mut gather_lane_floor: Option<f64> = None;
    let mut scaling_disclose_2t_floor: Option<f64> = None;
    let mut delta_disclose_floor: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number")
            }
            "--max-edges" => {
                max_edges = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-edges needs a number")
            }
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number")
            }
            "--threads" => {
                threads = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n: &usize| n >= 1)
                        .expect("--threads needs a positive number"),
                )
            }
            "--assert-disclose-100k-under" => {
                disclose_100k_ceiling_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-disclose-100k-under needs a number (ms)"),
                )
            }
            "--assert-datagen-1m-under" => {
                datagen_1m_ceiling_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-datagen-1m-under needs a number (ms)"),
                )
            }
            "--assert-answer-qps-over" => {
                answer_qps_floor = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-answer-qps-over needs a number (queries/s)"),
                )
            }
            "--assert-binary-load-1m-under" => {
                binary_load_1m_ceiling_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-binary-load-1m-under needs a number (ms)"),
                )
            }
            "--assert-gather-lane-over" => {
                gather_lane_floor = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-gather-lane-over needs a number (speedup ratio)"),
                )
            }
            "--assert-scaling-disclose-2t-over" => {
                scaling_disclose_2t_floor = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-scaling-disclose-2t-over needs a number (speedup ratio)"),
                )
            }
            "--assert-delta-disclose-over" => {
                delta_disclose_floor = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--assert-delta-disclose-over needs a number (speedup ratio)"),
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: [--out FILE] [--seed N] [--max-edges N] [--reps N] [--threads N] \
                     [--assert-disclose-100k-under MS] [--assert-datagen-1m-under MS] \
                     [--assert-answer-qps-over QPS] [--assert-binary-load-1m-under MS] \
                     [--assert-gather-lane-over RATIO] [--assert-scaling-disclose-2t-over RATIO] \
                     [--assert-delta-disclose-over RATIO]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    // Size the rayon pool before any parallel call: the vendored pool
    // reads this env var per call, so one write here governs every
    // phase below (the scaling sweep re-points it per row and restores
    // this value afterwards).
    if let Some(n) = threads {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }

    eprintln!("measuring cut-scorer comparison (100k edges, 64 candidates)…");
    let scorer = scorer_comparison(seed, reps);
    eprintln!(
        "  naive {:.3} ms  prefix {:.3} ms  speedup {:.1}×",
        scorer.naive_ms, scorer.prefix_ms, scorer.speedup
    );

    // Always measured at 1M edges so the `pair_counts_1m` entry means
    // the same thing in every report — unlike the pipeline phase runs
    // this costs well under a second, so `--max-edges` (which bounds
    // the expensive multi-rep phase sweeps) does not clip it.
    eprintln!("measuring pair-count strategies (1M edges)…");
    let pair_counts = pair_counts_comparison(1_000_000, seed, 1);
    eprintln!(
        "  per-level rescan {:.1} ms  one-sweep+rollup {:.1} ms  speedup {:.1}×",
        pair_counts.per_level_rescan_ms, pair_counts.one_sweep_rollup_ms, pair_counts.speedup
    );

    // Like `pair_counts_1m`, always measured at 1M edges / 1% churn so
    // the entry means the same thing in every report.
    eprintln!("measuring epoch-delta disclosure vs full recompute (1M edges, 1% churn)…");
    let delta_disclose_1m = delta_disclose_comparison(1_000_000, seed, 2);
    eprintln!(
        "  full recompute {:.1} ms  delta update {:.1} ms  speedup {:.1}× \
         ({} inserts, {} deletes)",
        delta_disclose_1m.full_recompute_ms,
        delta_disclose_1m.delta_update_ms,
        delta_disclose_1m.speedup,
        delta_disclose_1m.delta_inserts,
        delta_disclose_1m.delta_deletes
    );

    // Like `pair_counts_1m`, always measured at 1M draws so the entries
    // mean the same thing in every report; well under a second per
    // model, so `--max-edges` does not clip it.
    eprintln!("measuring datagen strategies (1M edge draws, per model)…");
    let datagen_1m = datagen_comparison(1_000_000, seed, 2);
    for d in &datagen_1m {
        eprintln!(
            "  {:<16} incremental {:.1} ms  streaming {:.1} ms  speedup {:.1}×",
            d.model, d.incremental_ms, d.streaming_ms, d.speedup
        );
    }

    // Like `pair_counts_1m`, always measured at the 1M scale so the
    // entry means the same thing in every report — one pipeline run
    // plus file IO, cheap enough that `--max-edges` does not clip it.
    eprintln!("measuring artifact save/load, JSON vs binary (1M edges)…");
    let artifact_io_1m = artifact_io_comparison(1_000_000, seed, 2);
    eprintln!(
        "  json {:.0} KiB save {:.1} ms load+index {:.1} ms | \
         gda {:.0} KiB save {:.1} ms load+index {:.1} ms | load speedup {:.1}×",
        artifact_io_1m.json_bytes as f64 / 1024.0,
        artifact_io_1m.json_save_ms,
        artifact_io_1m.json_load_index_ms,
        artifact_io_1m.binary_bytes as f64 / 1024.0,
        artifact_io_1m.binary_save_ms,
        artifact_io_1m.binary_load_index_ms,
        artifact_io_1m.load_speedup
    );

    let mut phases = Vec::new();
    let mut answer_qps = Vec::new();
    let mut reader_throughput = None;
    for edges in [10_000usize, 100_000, 1_000_000] {
        if edges > max_edges {
            eprintln!("skipping {edges} edges (--max-edges {max_edges})");
            continue;
        }
        eprintln!("running pipeline at {edges} edges…");
        let (t, qps, readers) = pipeline_at(edges, seed, reps);
        eprintln!(
            "  datagen {:.1} ms | specialize {:.1} ms | disclose {:.1} ms | \
             postprocess {:.3} ms | answering {:.1} ms",
            t.datagen_ms, t.specialize_ms, t.disclose_ms, t.postprocess_ms, t.answering_ms
        );
        for q in &qps {
            eprintln!(
                "  serving {} × {:<16} rebuild {:.3} ms | indexed {:.3} ms | \
                 speedup {:.1}× | {:.0} q/s",
                q.queries, q.query_type, q.rebuild_ms, q.indexed_ms, q.speedup, q.indexed_qps
            );
        }
        if let Some(r) = &readers {
            eprintln!(
                "  {} readers × {} queries: single {:.1} ms | concurrent {:.1} ms | \
                 {:.0} q/s aggregate",
                r.readers,
                r.queries_per_reader,
                r.single_reader_ms,
                r.concurrent_ms,
                r.aggregate_qps
            );
            reader_throughput = readers;
        }
        phases.push(t);
        answer_qps.extend(qps);
    }

    eprintln!("measuring lane kernels vs pinned scalar fallbacks…");
    let lane_kernels = lane_kernel_comparison(seed, reps);
    for k in &lane_kernels {
        eprintln!(
            "  {:<24} scalar {:.3} ms  lane {:.3} ms  speedup {:.2}×",
            k.kernel, k.scalar_ms, k.lane_ms, k.speedup
        );
    }

    eprintln!("measuring multi-thread scaling (1/2/4/8 pool threads)…");
    let scaling = scaling_report(seed, reps.min(2));
    eprintln!("  host cores: {}", scaling.host_cores);
    for e in &scaling.entries {
        eprintln!(
            "  {} thread(s): datagen {:.1} ms ({:.2}×) | disclose {:.1} ms ({:.2}×) | \
             answer {:.3} ms ({:.2}×)",
            e.threads,
            e.datagen_1m_ms,
            e.datagen_speedup,
            e.disclose_1m_ms,
            e.disclose_speedup,
            e.answer_100k_ms,
            e.answer_speedup
        );
    }

    let disclose_100k = phases
        .iter()
        .find(|p| (90_000..=110_000).contains(&p.edges))
        .map(|p| p.disclose_ms);
    let answer_qps_100k: Vec<(String, f64)> = answer_qps
        .iter()
        .filter(|q| (90_000..=110_000).contains(&q.edges))
        .map(|q| (q.query_type.clone(), q.indexed_qps))
        .collect();

    let report = Report {
        generated_by: "gdp-bench bench_pipeline".to_string(),
        seed,
        threads: rayon::current_num_threads(),
        host_cores: host_cores(),
        scorer_100k: scorer,
        pair_counts_1m: pair_counts,
        delta_disclose_1m,
        datagen_1m,
        artifact_io_1m,
        answer_qps,
        reader_throughput,
        lane_kernels,
        scaling,
        phases,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("report written");
    eprintln!("wrote {out_path}");

    // Regression gate for CI: the 100k-edge disclose phase must stay
    // under the ceiling (a reintroduced per-level edge scan puts it back
    // to ~20 ms; the one-sweep engine runs it in low single digits).
    if let Some(ceiling) = disclose_100k_ceiling_ms {
        match disclose_100k {
            Some(ms) if ms > ceiling => {
                eprintln!(
                    "FAIL: disclose at 100k edges took {ms:.1} ms \
                     (ceiling {ceiling:.1} ms)"
                );
                std::process::exit(1);
            }
            Some(ms) => eprintln!(
                "disclose at 100k edges: {ms:.1} ms ≤ ceiling {ceiling:.1} ms"
            ),
            None => {
                eprintln!("FAIL: --assert-disclose-100k-under set but the 100k phase did not run");
                std::process::exit(1);
            }
        }
    }

    // Regression gate for CI: streaming Erdős–Rényi generation at 1M
    // draws must stay under the ceiling (single-stream sampling through
    // the sorting builder puts it back above ~40 ms; the streaming
    // engine runs it in the teens single-threaded, less with a pool).
    if let Some(ceiling) = datagen_1m_ceiling_ms {
        let er = report
            .datagen_1m
            .iter()
            .find(|d| d.model == "erdos_renyi")
            .expect("erdos_renyi datagen_1m entry always measured");
        if er.streaming_ms > ceiling {
            eprintln!(
                "FAIL: streaming erdos_renyi datagen at 1M draws took {:.1} ms \
                 (ceiling {ceiling:.1} ms)",
                er.streaming_ms
            );
            std::process::exit(1);
        }
        eprintln!(
            "streaming erdos_renyi datagen at 1M draws: {:.1} ms ≤ ceiling {ceiling:.1} ms",
            er.streaming_ms
        );
    }

    // Regression gate for CI: **every** query variant's indexed serving
    // path at 100k edges must clear the throughput floor (a fallback to
    // per-query estimator rebuilds or release rescans is an order of
    // magnitude below it for the gather, and the O(1) variants have far
    // more headroom still).
    if let Some(floor) = answer_qps_floor {
        if answer_qps_100k.is_empty() {
            eprintln!("FAIL: --assert-answer-qps-over set but the 100k phase did not run");
            std::process::exit(1);
        }
        let mut failed = false;
        for (query_type, qps) in &answer_qps_100k {
            if *qps < floor {
                eprintln!(
                    "FAIL: indexed {query_type} answering at 100k edges ran {qps:.0} q/s \
                     (floor {floor:.0} q/s)"
                );
                failed = true;
            } else {
                eprintln!(
                    "indexed {query_type} answering at 100k edges: {qps:.0} q/s \
                     ≥ floor {floor:.0} q/s"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    // Regression gate for CI: loading + indexing the 1M-edge binary
    // artifact must stay under the ceiling (the JSON path — parse plus
    // canonical-digest re-hash — sits several times above it; a binary
    // loader that fell back to JSON-shaped work would blow through).
    if let Some(ceiling) = binary_load_1m_ceiling_ms {
        let ms = report.artifact_io_1m.binary_load_index_ms;
        if ms > ceiling {
            eprintln!(
                "FAIL: binary artifact load+index at 1M edges took {ms:.1} ms \
                 (ceiling {ceiling:.1} ms)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "binary artifact load+index at 1M edges: {ms:.1} ms ≤ ceiling {ceiling:.1} ms"
        );
    }

    // Regression gate for CI: the chunked lane subset-gather kernel must
    // keep beating its pinned scalar fallback by the given factor — a
    // change that quietly de-vectorizes the gather (or reintroduces the
    // per-call bitmap zeroing / sort the lane path hoisted out) shows up
    // here as a collapsed ratio, independent of runner speed.
    if let Some(floor) = gather_lane_floor {
        let gather = report
            .lane_kernels
            .iter()
            .find(|k| k.kernel == "subset_gather")
            .expect("lane_kernels must include the subset_gather entry");
        if gather.speedup < floor {
            eprintln!(
                "FAIL: lane subset gather at {:.2}× over scalar (floor {floor:.2}×; \
                 scalar {:.3} ms, lane {:.3} ms)",
                gather.speedup, gather.scalar_ms, gather.lane_ms
            );
            std::process::exit(1);
        }
        eprintln!(
            "lane subset gather: {:.2}× over scalar ≥ floor {floor:.2}×",
            gather.speedup
        );
    }

    // Regression gate for CI: producing epoch N+1 from a 1% delta must
    // keep beating the full per-level recompute by the given factor — a
    // change that quietly turns the dirty-row delta path back into a
    // whole-hierarchy re-sweep collapses this ratio, independent of
    // runner speed.
    if let Some(floor) = delta_disclose_floor {
        let d = &report.delta_disclose_1m;
        if d.speedup < floor {
            eprintln!(
                "FAIL: delta-updated disclosure at {:.2}× over full recompute \
                 (floor {floor:.2}×; full {:.1} ms, delta {:.1} ms)",
                d.speedup, d.full_recompute_ms, d.delta_update_ms
            );
            std::process::exit(1);
        }
        eprintln!(
            "delta-updated disclosure: {:.2}× over full recompute ≥ floor {floor:.2}×",
            d.speedup
        );
    }

    // Regression gate for CI: disclosure at 2 pool threads must show
    // real parallel speedup over the same run at 1 thread. On a
    // single-core host no speedup is physically available, so the gate
    // skips (with a notice) rather than encoding the runner's shape.
    if let Some(floor) = scaling_disclose_2t_floor {
        if report.scaling.host_cores < 2 {
            eprintln!(
                "skipping --assert-scaling-disclose-2t-over: single-core host \
                 (host_cores = {})",
                report.scaling.host_cores
            );
        } else {
            let row = report
                .scaling
                .entries
                .iter()
                .find(|e| e.threads == 2)
                .expect("scaling report must include the 2-thread row");
            if row.disclose_speedup < floor {
                eprintln!(
                    "FAIL: disclose at 2 threads is {:.2}× over 1 thread \
                     (floor {floor:.2}×; 1t {:.1} ms, 2t {:.1} ms)",
                    row.disclose_speedup,
                    row.disclose_1m_ms * row.disclose_speedup,
                    row.disclose_1m_ms
                );
                std::process::exit(1);
            }
            eprintln!(
                "disclose scaling at 2 threads: {:.2}× over 1 thread ≥ floor {floor:.2}×",
                row.disclose_speedup
            );
        }
    }
}
