//! Experiment harness shared by the `gdp-bench` binaries.
//!
//! Each binary regenerates one table or figure (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig1` | Figure 1 — RER of the noisy association count vs `εg`, one series per release level |
//! | `table1` | the paper's inline DBLP statistics table |
//! | `ablation_split` | split-strategy ablation (exponential / median / random) |
//! | `ablation_delta` | δ sensitivity of the Gaussian calibration |
//! | `ablation_fanout` | fanout interpretation (2 vs 4 subgroups per side per level) |
//! | `ablation_mechanism` | classic vs analytic Gaussian vs Laplace |
//! | `baseline_compare` | calibrated group-DP vs naive k-fold composition |
//!
//! All binaries accept `--paper-scale` (full 6.4M-edge DBLP-like graph;
//! default is the 1:100 laptop preset), `--trials N`, and `--seed N`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod fig1;
pub mod table;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::{GroupHierarchy, SpecializationConfig, Specializer, SplitStrategy};
use gdp_datagen::{DblpConfig, DblpGenerator};
use gdp_graph::BipartiteGraph;

/// A generated dataset plus its specialization — the shared setup phase
/// of every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The DBLP-like association graph.
    pub graph: BipartiteGraph,
    /// The hierarchy produced by Phase 1.
    pub hierarchy: GroupHierarchy,
}

/// Builds the standard experiment context: generate the DBLP-like graph
/// and run Phase-1 specialization.
///
/// # Panics
///
/// Panics on configuration errors — experiment setup failures should be
/// loud, not threaded through every binary.
pub fn build_context(
    dblp: DblpConfig,
    rounds: u32,
    strategy: SplitStrategy,
    seed: u64,
) -> ExperimentContext {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = DblpGenerator::new(dblp).generate(&mut rng);
    let mut config = SpecializationConfig::paper_default(rounds).expect("rounds > 0");
    config.strategy = strategy;
    let hierarchy = Specializer::new(config)
        .specialize(&graph, &mut rng)
        .expect("specialization of a generated graph succeeds");
    ExperimentContext { graph, hierarchy }
}

/// Thins a hierarchy by keeping every `stride`-th split level, emulating
/// larger fanouts (stride 2 over binary splits ⇒ 4 subgroups per side
/// per retained level). The finest (individual) and coarsest levels are
/// always kept.
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn thin_hierarchy(hierarchy: &GroupHierarchy, stride: usize) -> GroupHierarchy {
    assert!(stride > 0, "stride must be positive");
    let levels = hierarchy.levels();
    let n = levels.len();
    let mut picked = Vec::new();
    picked.push(levels[0].clone());
    let mut i = 1 + (n - 1 - 1) % stride; // align so the coarsest lands exactly
    while i < n {
        picked.push(levels[i].clone());
        i += stride;
    }
    if picked.len() < 2 {
        picked.push(levels[n - 1].clone());
    }
    GroupHierarchy::new(picked).expect("subsampled levels preserve refinement")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_at_tiny_scale() {
        let ctx = build_context(DblpConfig::tiny(), 3, SplitStrategy::Median, 7);
        assert_eq!(ctx.hierarchy.level_count(), 5);
        assert!(ctx.graph.edge_count() > 0);
    }

    #[test]
    fn thinning_preserves_endpoints_and_refinement() {
        let ctx = build_context(DblpConfig::tiny(), 4, SplitStrategy::Median, 7);
        let thin = thin_hierarchy(&ctx.hierarchy, 2);
        // Finest level kept.
        assert_eq!(
            thin.finest().group_count(),
            ctx.hierarchy.finest().group_count()
        );
        // Coarsest level kept.
        assert_eq!(
            thin.coarsest().group_count(),
            ctx.hierarchy.coarsest().group_count()
        );
        assert!(thin.level_count() < ctx.hierarchy.level_count());
    }

    #[test]
    fn thin_stride_one_is_identity() {
        let ctx = build_context(DblpConfig::tiny(), 3, SplitStrategy::Median, 9);
        let same = thin_hierarchy(&ctx.hierarchy, 1);
        assert_eq!(same.level_count(), ctx.hierarchy.level_count());
    }
}
