//! Minimal shared argument parsing for the experiment binaries — flags
//! only, no positional arguments, no external dependency.

use gdp_datagen::DblpConfig;

/// Arguments common to every experiment binary.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Use the full paper-scale dataset instead of the 1:100 preset.
    pub paper_scale: bool,
    /// Noise trials to average RER over.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

impl CommonArgs {
    /// Parses `--paper-scale`, `--trials N`, `--seed N` from the process
    /// arguments; exits with a usage message on anything unknown.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self {
            paper_scale: false,
            trials: 25,
            seed: 42,
        };
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper-scale" => out.paper_scale = true,
                "--trials" => out.trials = expect_num(iter.next(), "--trials"),
                "--seed" => out.seed = expect_num(iter.next(), "--seed"),
                "--help" | "-h" => {
                    eprintln!("flags: [--paper-scale] [--trials N] [--seed N]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The dataset preset selected by the flags.
    pub fn dblp_config(&self) -> DblpConfig {
        if self.paper_scale {
            DblpConfig::paper_scale()
        } else {
            DblpConfig::laptop_scale()
        }
    }
}

fn expect_num<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a numeric argument");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert!(!a.paper_scale);
        assert_eq!(a.trials, 25);
        assert_eq!(a.seed, 42);
        assert_eq!(a.dblp_config().authors, DblpConfig::laptop_scale().authors);
    }

    #[test]
    fn flags_parse() {
        let a = parse(&["--paper-scale", "--trials", "7", "--seed", "99"]);
        assert!(a.paper_scale);
        assert_eq!(a.trials, 7);
        assert_eq!(a.seed, 99);
        assert_eq!(a.dblp_config().authors, 1_295_100);
    }
}
