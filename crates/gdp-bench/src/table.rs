//! Aligned plain-text table rendering and CSV emission for experiment
//! output — small and dependency-free on purpose.

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (no quoting — experiment cells never contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 significant decimals, trimming noise digits in
/// experiment tables.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long_header"]);
        t.push_row(["1", "2"]);
        t.push_row(["333", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(["x", "y"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push_row(["1"]);
        assert!(t.to_csv().contains("1,,"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345678), "0.12346");
        assert_eq!(fmt_f64(4.24242), "4.242");
        assert_eq!(fmt_f64(123456.7), "123457");
    }
}
