//! The Figure-1 experiment: relative error rate of the noisy
//! association count per release level, swept over `εg`.
//!
//! The paper's setup: DBLP graph, 9 specialization rounds, releases
//! `I_{9,i}` for `i ∈ [0,7]`, Gaussian noise, RER = `|P − T| / T`.
//! Our reproduction keeps the same shape at configurable scale; see
//! `EXPERIMENTS.md` for the paper-vs-measured discussion.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gdp_core::{relative_error, DisclosureConfig, NoiseMechanism, Query};
use gdp_core::{GroupHierarchy, MultiLevelDiscloser};
use gdp_graph::BipartiteGraph;

use crate::table::{fmt_f64, Table};

/// The εg sweep used in Figure 1 (0.1 … 0.999; the paper's right edge is
/// labelled 1 but classic Gaussian needs ε < 1).
pub fn paper_epsilons() -> Vec<f64> {
    vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.999]
}

/// One εg row of the Figure-1 table.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// The group-privacy budget.
    pub epsilon_g: f64,
    /// Mean RER per released level (index = hierarchy level).
    pub rer_by_level: Vec<f64>,
}

/// Configuration of a Figure-1 run.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// The εg sweep.
    pub epsilons: Vec<f64>,
    /// Gaussian δ.
    pub delta: f64,
    /// Released levels, finest first (paper: `0..=7`).
    pub levels: Vec<usize>,
    /// Noise trials per (εg, level) cell.
    pub trials: usize,
    /// Noise mechanism.
    pub mechanism: NoiseMechanism,
    /// RNG seed for the noise phase.
    pub seed: u64,
}

impl Fig1Config {
    /// The paper's configuration over a hierarchy of `level_count`
    /// levels: sweep [`paper_epsilons`], δ = 1e-6, release every level
    /// except the two coarsest (the paper releases `I_{9,0}..I_{9,7}` of
    /// a 10-level hierarchy), classic Gaussian.
    pub fn paper(level_count: usize, trials: usize, seed: u64) -> Self {
        let released = level_count.saturating_sub(2).max(1);
        Self {
            epsilons: paper_epsilons(),
            delta: 1e-6,
            levels: (0..released).collect(),
            trials,
            mechanism: NoiseMechanism::GaussianClassic,
            seed,
        }
    }
}

/// Runs the sweep: for every εg, disclose `trials` times and average the
/// per-level RER of the total association count.
///
/// # Panics
///
/// Panics on invalid configuration (the harness treats setup errors as
/// fatal).
pub fn run(
    graph: &BipartiteGraph,
    hierarchy: &GroupHierarchy,
    config: &Fig1Config,
) -> Vec<Fig1Row> {
    let true_total = graph.edge_count() as f64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rows = Vec::with_capacity(config.epsilons.len());
    for &eps in &config.epsilons {
        let disclosure = DisclosureConfig::count_only(eps, config.delta)
            .expect("valid epsilon/delta")
            .with_mechanism(config.mechanism)
            .with_queries(vec![Query::TotalAssociations]);
        let discloser = MultiLevelDiscloser::new(disclosure);
        let mut sums = vec![0f64; config.levels.len()];
        for _ in 0..config.trials {
            let release = discloser
                .disclose(graph, hierarchy, &mut rng)
                .expect("disclosure succeeds");
            for (slot, &level) in config.levels.iter().enumerate() {
                let noisy = release
                    .level(level)
                    .expect("level released")
                    .total_associations()
                    .expect("count query configured");
                sums[slot] += relative_error(noisy, true_total);
            }
        }
        rows.push(Fig1Row {
            epsilon_g: eps,
            rer_by_level: sums.into_iter().map(|s| s / config.trials as f64).collect(),
        });
    }
    rows
}

/// Renders Figure 1 as a table: one row per εg, one column per release
/// level `I_{L,i}`.
pub fn to_table(rows: &[Fig1Row], levels: &[usize], hierarchy_top: usize) -> Table {
    let mut header = vec!["eps_g".to_string()];
    header.extend(
        levels
            .iter()
            .map(|l| format!("I{hierarchy_top},{l}")),
    );
    let mut table = Table::new(header);
    for row in rows {
        let mut cells = vec![fmt_f64(row.epsilon_g)];
        cells.extend(row.rer_by_level.iter().map(|r| fmt_f64(*r)));
        table.push_row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_context;
    use gdp_core::SplitStrategy;
    use gdp_datagen::DblpConfig;

    #[test]
    fn fig1_runs_and_is_monotone_in_level() {
        let ctx = build_context(DblpConfig::tiny(), 3, SplitStrategy::Median, 1);
        let config = Fig1Config {
            epsilons: vec![0.5],
            delta: 1e-6,
            levels: vec![0, 1, 2, 3],
            trials: 60,
            mechanism: NoiseMechanism::GaussianClassic,
            seed: 2,
        };
        let rows = run(&ctx.graph, &ctx.hierarchy, &config);
        assert_eq!(rows.len(), 1);
        let rer = &rows[0].rer_by_level;
        assert_eq!(rer.len(), 4);
        // Averaged over 60 trials, coarser levels must carry clearly
        // larger error (σ grows by ~2× per level).
        assert!(
            rer[3] > rer[0],
            "coarse level not noisier: {rer:?}"
        );
    }

    #[test]
    fn fig1_rer_decreases_with_epsilon() {
        let ctx = build_context(DblpConfig::tiny(), 3, SplitStrategy::Median, 3);
        let config = Fig1Config {
            epsilons: vec![0.1, 0.999],
            delta: 1e-6,
            levels: vec![3],
            trials: 60,
            mechanism: NoiseMechanism::GaussianClassic,
            seed: 4,
        };
        let rows = run(&ctx.graph, &ctx.hierarchy, &config);
        assert!(
            rows[0].rer_by_level[0] > rows[1].rer_by_level[0],
            "RER should fall as εg rises: {:?}",
            rows
        );
    }

    #[test]
    fn table_shape_matches_paper_labels() {
        let rows = vec![Fig1Row {
            epsilon_g: 0.5,
            rer_by_level: vec![0.1, 0.2],
        }];
        let t = to_table(&rows, &[0, 1], 9);
        let rendered = t.render();
        assert!(rendered.contains("I9,0"));
        assert!(rendered.contains("I9,1"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn paper_config_releases_all_but_two_coarsest() {
        let c = Fig1Config::paper(10, 5, 1);
        assert_eq!(c.levels, (0..8).collect::<Vec<_>>());
        assert_eq!(c.epsilons.len(), 10);
    }
}
