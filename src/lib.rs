//! Facade crate for the `group-dp` workspace — re-exports the public API
//! of every member crate so applications can depend on a single crate.
//!
//! See the workspace `README.md` for the architecture overview and the
//! individual crates for detailed docs:
//!
//! * [`mechanisms`] — DP primitives (Laplace, Gaussian, exponential, …)
//! * [`graph`] — bipartite association-graph substrate
//! * [`datagen`] — synthetic workload generators (DBLP-like, scenarios)
//! * [`core`] — g-group differential privacy: hierarchy specialization
//!   and multi-level disclosure
//! * [`serve`] — the serving subsystem: indexed release artifacts,
//!   dataset/epoch stores, the privilege-gated answering service
//! * [`net`] — the hardened HTTP frontend over the answering service:
//!   bounded queue + backpressure, deadlines, supervised workers,
//!   graceful shutdown (see `docs/operations.md`)

pub use gdp_core as core;
pub use gdp_datagen as datagen;
pub use gdp_graph as graph;
pub use gdp_mechanisms as mechanisms;
pub use gdp_net as net;
pub use gdp_serve as serve;
